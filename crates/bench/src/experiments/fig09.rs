//! Fig. 9: per-dimension frontend activity rate over time for a 1 GB
//! All-Reduce on 3D-SW_SW_SW_homo.

use crate::report::{fmt_pct, fmt_us, Report, Table};
use themis::api::{Campaign, Runner};
use themis::{DataSize, PresetTopology, SchedulerKind, SimPlanCache, SimReport};

/// The activity timeline of one scheduler on the Fig. 9 configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityTimeline {
    /// Scheduler label.
    pub scheduler: String,
    /// Total collective completion time, ns.
    pub total_time_ns: f64,
    /// Per-dimension activity rates per 100 µs window (`rates[dim][window]`).
    pub rates: Vec<Vec<f64>>,
}

impl ActivityTimeline {
    /// Mean activity rate of one dimension across the whole collective.
    pub fn mean_rate(&self, dim: usize) -> f64 {
        let rates = &self.rates[dim];
        if rates.is_empty() {
            return 0.0;
        }
        rates.iter().sum::<f64>() / rates.len() as f64
    }

    /// Downsamples the timeline of a dimension into `buckets` equal spans
    /// (used to print a compact view of the figure).
    pub fn bucketed(&self, dim: usize, buckets: usize) -> Vec<f64> {
        let rates = &self.rates[dim];
        if rates.is_empty() || buckets == 0 {
            return vec![0.0; buckets];
        }
        (0..buckets)
            .map(|b| {
                let start = b * rates.len() / buckets;
                let end = (((b + 1) * rates.len()) / buckets)
                    .max(start + 1)
                    .min(rates.len());
                let span = &rates[start..end.max(start + 1).min(rates.len())];
                if span.is_empty() {
                    0.0
                } else {
                    span.iter().sum::<f64>() / span.len() as f64
                }
            })
            .collect()
    }
}

fn timeline_of(report: &SimReport) -> ActivityTimeline {
    ActivityTimeline {
        scheduler: report.scheduler_name.clone(),
        total_time_ns: report.total_time_ns,
        rates: report.activity_rates(),
    }
}

/// Runs the Fig. 9 experiment with a configurable collective size
/// (the paper uses 1 GB) as one parallel campaign.
pub fn run_with(size: DataSize) -> Vec<ActivityTimeline> {
    run_cached(size, &SimPlanCache::new())
}

/// Like [`run_with`], but through the figure suite's shared warm
/// [`SimPlanCache`]. The Fig. 9 cell (1 GB on 3D-SW_SW_SW_homo under every
/// scheduler) is a subset of the Fig. 8 / Fig. 11 matrix, so with a shared
/// plan this experiment re-simulates without re-scheduling or re-costing.
pub fn run_cached(size: DataSize, plan: &SimPlanCache) -> Vec<ActivityTimeline> {
    let preset = PresetTopology::SwSwSw3dHomo;
    let campaign = Campaign::new()
        .topologies([preset])
        .sizes([size])
        .run_with_cache(&Runner::parallel(), plan)
        .expect("evaluation configurations are valid");
    SchedulerKind::all()
        .into_iter()
        .map(|kind| {
            timeline_of(
                &campaign
                    .find(preset.name(), kind, size)
                    .expect("the campaign covers every cell")
                    .report,
            )
        })
        .collect()
}

/// Renders the full Fig. 9 experiment (1 GB All-Reduce).
pub fn run() -> Report {
    run_from_timelines(run_with(DataSize::from_gib(1.0)))
}

/// Renders the full Fig. 9 experiment through the figure suite's shared warm
/// [`SimPlanCache`].
pub fn run_shared(plan: &SimPlanCache) -> Report {
    run_from_timelines(run_cached(DataSize::from_gib(1.0), plan))
}

fn run_from_timelines(timelines: Vec<ActivityTimeline>) -> Report {
    let mut report =
        Report::new("Fig. 9 — frontend activity rate, 1 GB All-Reduce on 3D-SW_SW_SW_homo");
    report.push_note(
        "a dimension is active when at least one chunk is present for processing; rates are \
         averaged over 100 us windows and shown here bucketed into tenths of the run",
    );
    for timeline in &timelines {
        let mut table = Table::new(
            format!(
                "{} (completes in {} us)",
                timeline.scheduler,
                fmt_us(timeline.total_time_ns)
            ),
            &[
                "Dimension",
                "0-10%",
                "10-20%",
                "20-30%",
                "30-40%",
                "40-50%",
                "50-60%",
                "60-70%",
                "70-80%",
                "80-90%",
                "90-100%",
                "mean",
            ],
        );
        for dim in 0..timeline.rates.len() {
            let mut row = vec![format!("dim{}", dim + 1)];
            for rate in timeline.bucketed(dim, 10) {
                row.push(fmt_pct(rate));
            }
            row.push(fmt_pct(timeline.mean_rate(dim)));
            table.push_row(row);
        }
        report.push_table(table);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_underutilizes_outer_dimensions_and_themis_recovers_them() {
        // A smaller collective keeps the test fast; the qualitative shape of
        // Fig. 9 (baseline leaves dim2/dim3 mostly inactive, Themis keeps all
        // dimensions busy) is size-independent for BW-bound collectives.
        let timelines = run_with(DataSize::from_mib(256.0));
        assert_eq!(timelines.len(), 3);
        let baseline = &timelines[0];
        let scf = &timelines[2];
        assert!(baseline.mean_rate(0) > 0.9);
        assert!(baseline.mean_rate(2) < 0.55);
        assert!(scf.mean_rate(1) > baseline.mean_rate(1));
        assert!(scf.mean_rate(2) > baseline.mean_rate(2));
        // Themis finishes sooner.
        assert!(scf.total_time_ns < baseline.total_time_ns);
    }

    #[test]
    fn shared_plan_timelines_match_the_cold_path() {
        let plan = SimPlanCache::new();
        let size = DataSize::from_mib(128.0);
        let cold = run_with(size);
        assert_eq!(run_cached(size, &plan), cold);
        // Fig. 9's cells are a subset of the Fig. 8/11 matrix at 1 GB; at any
        // size a second run over the same plan is fully warm.
        assert_eq!(run_cached(size, &plan), cold);
        assert!(plan.schedules().hits() > 0);
    }

    #[test]
    fn bucketing_preserves_rate_bounds() {
        let timelines = run_with(DataSize::from_mib(128.0));
        for timeline in &timelines {
            for dim in 0..timeline.rates.len() {
                for rate in timeline.bucketed(dim, 10) {
                    assert!((0.0..=1.0 + 1e-9).contains(&rate));
                }
            }
        }
    }
}
