//! The bench-crate extension to the resident campaign service: figure-suite
//! requests.
//!
//! The service protocol ([`themis::api::serve`]) is defined in the facade,
//! which cannot depend on this crate's experiment implementations. The
//! extension-handler hook closes the loop: [`figure_suite`] plugs the
//! fig04/fig08/fig09/fig11 `run_shared` suite into a [`Service`], so a
//! `{"kind":"figure-suite"}` request runs the paper figures against the
//! daemon's **resident** plan cache — the cross-process half of the
//! figure-suite reuse when the daemon also carries a shared `--cache` file.

use crate::experiments;
use themis::api::json::Json;
use themis::api::serve::Service;
use themis::ThemisError;

/// Extension handler for [`Service::handle_line_with`] /
/// [`Service::serve_with`]: answers `figure-suite` requests, declines
/// everything else.
///
/// The request payload is `{"figures": ["fig04", ...]}` (defaulting to the
/// whole fig04/fig08/fig09/fig11 suite); the result carries each figure's
/// rendered markdown plus the resident plan cache's cumulative hit
/// statistics.
pub fn figure_suite(
    service: &Service,
    kind: &str,
    request: &Json,
) -> Option<Result<Json, ThemisError>> {
    if kind != "figure-suite" {
        return None;
    }
    Some(run_figure_suite(service, request))
}

fn run_figure_suite(service: &Service, request: &Json) -> Result<Json, ThemisError> {
    let figures: Vec<String> = match request.get("figures") {
        Some(list) => list
            .as_arr()?
            .iter()
            .map(|name| Ok(name.as_str()?.to_string()))
            .collect::<Result<_, ThemisError>>()?,
        None => ["fig04", "fig08", "fig09", "fig11"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let plan = service.plan();
    let mut rendered = Vec::new();
    for name in &figures {
        let report = match name.as_str() {
            "fig04" => experiments::fig04::run_shared(plan),
            "fig08" => experiments::fig08::run_shared(plan),
            "fig09" => experiments::fig09::run_shared(plan),
            "fig11" => experiments::fig11::run_shared(plan),
            other => {
                return Err(ThemisError::Serve {
                    reason: format!(
                        "unknown figure `{other}` (expected fig04, fig08, fig09, or fig11)"
                    ),
                })
            }
        };
        rendered.push(Json::obj([
            ("figure", Json::Str(name.clone())),
            ("markdown", Json::Str(report.to_string())),
        ]));
    }
    Ok(Json::obj([
        ("figures", Json::Arr(rendered)),
        ("plan_cache", plan_cache_json(service)),
    ]))
}

/// Cumulative schedule/cost-table cache statistics of the service's resident
/// plan, in the shape `themis-experiments` prints in-process.
pub fn plan_cache_json(service: &Service) -> Json {
    let plan = service.plan();
    Json::obj([
        (
            "schedules",
            Json::obj([
                ("len", Json::Num(plan.schedules().len() as f64)),
                ("hits", Json::Num(plan.schedules().hits() as f64)),
                ("misses", Json::Num(plan.schedules().misses() as f64)),
            ]),
        ),
        (
            "cost_tables",
            Json::obj([
                ("len", Json::Num(plan.cost_tables().len() as f64)),
                ("hits", Json::Num(plan.cost_tables().hits() as f64)),
                ("misses", Json::Num(plan.cost_tables().misses() as f64)),
            ]),
        ),
    ])
}
