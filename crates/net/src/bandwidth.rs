//! Bandwidth and data-size units.
//!
//! The paper reports link bandwidths in Gbps (uni-directional) and collective
//! sizes in MB/GB. The simulator internally works in bytes and nanoseconds, so
//! these newtypes centralise the conversions and keep the unit discipline
//! explicit in function signatures.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A uni-directional bandwidth value.
///
/// Stored internally in Gbps, exactly as reported by Table 2 of the paper.
///
/// ```
/// use themis_net::Bandwidth;
/// let bw = Bandwidth::from_gbps(800.0);
/// assert_eq!(bw.as_gbps(), 800.0);
/// assert_eq!(bw.as_bytes_per_ns(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bandwidth {
    gbps: f64,
}

impl Bandwidth {
    /// A zero bandwidth value (useful as a fold/`Sum` identity).
    pub const ZERO: Bandwidth = Bandwidth { gbps: 0.0 };

    /// Creates a bandwidth from a Gbps (gigabits per second) value.
    pub fn from_gbps(gbps: f64) -> Self {
        Bandwidth { gbps }
    }

    /// Creates a bandwidth from a GB/s (gigabytes per second) value.
    pub fn from_gigabytes_per_sec(gbs: f64) -> Self {
        Bandwidth { gbps: gbs * 8.0 }
    }

    /// Returns the bandwidth in Gbps.
    pub fn as_gbps(&self) -> f64 {
        self.gbps
    }

    /// Returns the bandwidth in GB/s.
    pub fn as_gigabytes_per_sec(&self) -> f64 {
        self.gbps / 8.0
    }

    /// Returns the bandwidth in bytes per nanosecond.
    ///
    /// `x` Gbps = `x / 8` GB/s = `x / 8` bytes/ns (1 GB/s == 1 byte/ns).
    pub fn as_bytes_per_ns(&self) -> f64 {
        self.gbps / 8.0
    }

    /// Returns `true` if the value is finite and strictly positive.
    pub fn is_valid(&self) -> bool {
        self.gbps.is_finite() && self.gbps > 0.0
    }

    /// Time in nanoseconds needed to transfer `size` at this bandwidth.
    ///
    /// Returns `f64::INFINITY` when the bandwidth is zero.
    pub fn transfer_time_ns(&self, size: DataSize) -> f64 {
        if self.gbps <= 0.0 {
            return f64::INFINITY;
        }
        size.as_bytes_f64() / self.as_bytes_per_ns()
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Gbps", self.gbps)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth {
            gbps: self.gbps + rhs.gbps,
        }
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.gbps += rhs.gbps;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth {
            gbps: self.gbps - rhs.gbps,
        }
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth {
            gbps: self.gbps * rhs,
        }
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth {
            gbps: self.gbps / rhs,
        }
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, |acc, b| acc + b)
    }
}

/// A data size, stored in bytes.
///
/// ```
/// use themis_net::DataSize;
/// let size = DataSize::from_mib(256.0);
/// assert_eq!(size.as_bytes(), 256 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DataSize {
    bytes: u64,
}

impl DataSize {
    /// A zero-byte data size.
    pub const ZERO: DataSize = DataSize { bytes: 0 };

    /// Creates a data size from a raw byte count.
    pub fn from_bytes(bytes: u64) -> Self {
        DataSize { bytes }
    }

    /// Creates a data size from kibibytes.
    pub fn from_kib(kib: f64) -> Self {
        DataSize {
            bytes: (kib * 1024.0).round() as u64,
        }
    }

    /// Creates a data size from mebibytes.
    pub fn from_mib(mib: f64) -> Self {
        DataSize {
            bytes: (mib * 1024.0 * 1024.0).round() as u64,
        }
    }

    /// Creates a data size from gibibytes.
    pub fn from_gib(gib: f64) -> Self {
        DataSize {
            bytes: (gib * 1024.0 * 1024.0 * 1024.0).round() as u64,
        }
    }

    /// Returns the size in bytes.
    pub fn as_bytes(&self) -> u64 {
        self.bytes
    }

    /// Returns the size in bytes as `f64` (convenient for cost models).
    pub fn as_bytes_f64(&self) -> f64 {
        self.bytes as f64
    }

    /// Returns the size in mebibytes.
    pub fn as_mib(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0)
    }

    /// Returns the size in gibibytes.
    pub fn as_gib(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Returns `true` when the size is zero bytes.
    pub fn is_zero(&self) -> bool {
        self.bytes == 0
    }

    /// Saturating addition of two sizes.
    pub fn saturating_add(self, other: DataSize) -> DataSize {
        DataSize {
            bytes: self.bytes.saturating_add(other.bytes),
        }
    }

    /// Scales the size by a floating-point factor, rounding to the nearest byte.
    pub fn scaled(self, factor: f64) -> DataSize {
        DataSize {
            bytes: (self.bytes as f64 * factor).round().max(0.0) as u64,
        }
    }

    /// Splits the size into `parts` (nearly) equal chunks.
    ///
    /// The first `bytes % parts` chunks receive one extra byte so the chunk
    /// sizes always sum back to the original size.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn split_even(self, parts: usize) -> Vec<DataSize> {
        assert!(parts > 0, "cannot split a data size into zero parts");
        let parts_u64 = parts as u64;
        let base = self.bytes / parts_u64;
        let remainder = self.bytes % parts_u64;
        (0..parts_u64)
            .map(|i| DataSize::from_bytes(base + u64::from(i < remainder)))
            .collect()
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bytes >= 1024 * 1024 * 1024 {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if self.bytes >= 1024 * 1024 {
            write!(f, "{:.2} MiB", self.as_mib())
        } else if self.bytes >= 1024 {
            write!(f, "{:.2} KiB", self.bytes as f64 / 1024.0)
        } else {
            write!(f, "{} B", self.bytes)
        }
    }
}

impl Add for DataSize {
    type Output = DataSize;
    fn add(self, rhs: DataSize) -> DataSize {
        DataSize {
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl AddAssign for DataSize {
    fn add_assign(&mut self, rhs: DataSize) {
        self.bytes += rhs.bytes;
    }
}

impl Sum for DataSize {
    fn sum<I: Iterator<Item = DataSize>>(iter: I) -> DataSize {
        iter.fold(DataSize::ZERO, |acc, s| acc + s)
    }
}

impl From<u64> for DataSize {
    fn from(bytes: u64) -> Self {
        DataSize::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_to_bytes_per_ns() {
        assert_eq!(Bandwidth::from_gbps(8.0).as_bytes_per_ns(), 1.0);
        assert_eq!(Bandwidth::from_gbps(800.0).as_bytes_per_ns(), 100.0);
        assert_eq!(Bandwidth::from_gbps(1200.0).as_gigabytes_per_sec(), 150.0);
    }

    #[test]
    fn gigabytes_per_sec_roundtrip() {
        let bw = Bandwidth::from_gigabytes_per_sec(25.0);
        assert_eq!(bw.as_gbps(), 200.0);
        assert_eq!(bw.as_gigabytes_per_sec(), 25.0);
    }

    #[test]
    fn bandwidth_arithmetic() {
        let a = Bandwidth::from_gbps(100.0);
        let b = Bandwidth::from_gbps(300.0);
        assert_eq!((a + b).as_gbps(), 400.0);
        assert_eq!((b - a).as_gbps(), 200.0);
        assert_eq!((a * 2.0).as_gbps(), 200.0);
        assert_eq!((b / 3.0).as_gbps(), 100.0);
        let sum: Bandwidth = [a, b, a].into_iter().sum();
        assert_eq!(sum.as_gbps(), 500.0);
    }

    #[test]
    fn bandwidth_validity() {
        assert!(Bandwidth::from_gbps(1.0).is_valid());
        assert!(!Bandwidth::from_gbps(0.0).is_valid());
        assert!(!Bandwidth::from_gbps(-3.0).is_valid());
        assert!(!Bandwidth::from_gbps(f64::NAN).is_valid());
        assert!(!Bandwidth::from_gbps(f64::INFINITY).is_valid());
    }

    #[test]
    fn transfer_time() {
        // 100 bytes at 8 Gbps (= 1 byte/ns) takes 100 ns.
        let bw = Bandwidth::from_gbps(8.0);
        assert_eq!(bw.transfer_time_ns(DataSize::from_bytes(100)), 100.0);
        assert_eq!(
            Bandwidth::ZERO.transfer_time_ns(DataSize::from_bytes(1)),
            f64::INFINITY
        );
    }

    #[test]
    fn data_size_conversions() {
        assert_eq!(DataSize::from_kib(1.0).as_bytes(), 1024);
        assert_eq!(DataSize::from_mib(64.0).as_bytes(), 64 * 1024 * 1024);
        assert_eq!(DataSize::from_gib(1.0).as_bytes(), 1 << 30);
        assert_eq!(DataSize::from_gib(1.0).as_mib(), 1024.0);
        assert!(DataSize::ZERO.is_zero());
    }

    #[test]
    fn data_size_split_even_sums_to_total() {
        let total = DataSize::from_bytes(1001);
        let parts = total.split_even(4);
        assert_eq!(parts.len(), 4);
        let sum: DataSize = parts.iter().copied().sum();
        assert_eq!(sum, total);
        // No chunk deviates from any other by more than one byte.
        let max = parts.iter().map(|p| p.as_bytes()).max().unwrap();
        let min = parts.iter().map(|p| p.as_bytes()).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn data_size_split_zero_panics() {
        DataSize::from_bytes(10).split_even(0);
    }

    #[test]
    fn data_size_scaled() {
        let size = DataSize::from_bytes(1000);
        assert_eq!(size.scaled(0.5).as_bytes(), 500);
        assert_eq!(size.scaled(2.0).as_bytes(), 2000);
        assert_eq!(size.scaled(0.0).as_bytes(), 0);
    }

    #[test]
    fn data_size_display() {
        assert_eq!(DataSize::from_bytes(17).to_string(), "17 B");
        assert_eq!(DataSize::from_kib(2.0).to_string(), "2.00 KiB");
        assert_eq!(DataSize::from_mib(256.0).to_string(), "256.00 MiB");
        assert_eq!(DataSize::from_gib(1.0).to_string(), "1.00 GiB");
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::from_gbps(200.0).to_string(), "200 Gbps");
    }
}
