//! The evaluated platforms of the paper.
//!
//! [`current_generation_2d`] models the "current topology" of Fig. 4 (a DGX-2
//! style system with 1200 Gbps intra-node and 100 Gbps NIC bandwidth per NPU),
//! and [`next_generation_suite`] returns the six next-generation 1024-NPU
//! topologies of Table 2.

use crate::dimension::{DimensionSpec, TopologyKind};
use crate::error::NetError;
use crate::topology::NetworkTopology;

/// Identifier of one of the predefined platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PresetTopology {
    /// The "current" 2D platform of Fig. 4 (16×64, 1200/100 Gbps).
    Current2d,
    /// `2D-SW_SW`: 16×64, aggregate BW (1200, 800) Gbps.
    Sw2d,
    /// `3D-SW_SW_SW_homo`: 16×8×8, aggregate BW (800, 800, 800) Gbps.
    SwSwSw3dHomo,
    /// `3D-SW_SW_SW_hetero`: 16×8×8, aggregate BW (1600, 800, 400) Gbps.
    SwSwSw3dHetero,
    /// `3D-FC_Ring_SW`: 8×16×8, aggregate BW (1400, 800, 400) Gbps.
    FcRingSw3d,
    /// `4D-Ring_SW_SW_SW`: 4×4×8×8, aggregate BW (2000, 1600, 800, 400) Gbps.
    RingSwSwSw4d,
    /// `4D-Ring_FC_Ring_SW`: 4×8×4×8, aggregate BW (3000, 1400, 1200, 800) Gbps.
    RingFcRingSw4d,
}

impl PresetTopology {
    /// All presets (the current system followed by the Table 2 suite).
    pub fn all() -> [PresetTopology; 7] {
        [
            PresetTopology::Current2d,
            PresetTopology::Sw2d,
            PresetTopology::SwSwSw3dHomo,
            PresetTopology::SwSwSw3dHetero,
            PresetTopology::FcRingSw3d,
            PresetTopology::RingSwSwSw4d,
            PresetTopology::RingFcRingSw4d,
        ]
    }

    /// The six next-generation presets of Table 2 (excludes the current system).
    pub fn next_generation() -> [PresetTopology; 6] {
        [
            PresetTopology::Sw2d,
            PresetTopology::SwSwSw3dHomo,
            PresetTopology::SwSwSw3dHetero,
            PresetTopology::FcRingSw3d,
            PresetTopology::RingSwSwSw4d,
            PresetTopology::RingFcRingSw4d,
        ]
    }

    /// Canonical name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PresetTopology::Current2d => "Current-2D",
            PresetTopology::Sw2d => "2D-SW_SW",
            PresetTopology::SwSwSw3dHomo => "3D-SW_SW_SW_homo",
            PresetTopology::SwSwSw3dHetero => "3D-SW_SW_SW_hetero",
            PresetTopology::FcRingSw3d => "3D-FC_Ring_SW",
            PresetTopology::RingSwSwSw4d => "4D-Ring_SW_SW_SW",
            PresetTopology::RingFcRingSw4d => "4D-Ring_FC_Ring_SW",
        }
    }

    /// Builds the concrete [`NetworkTopology`] for this preset.
    pub fn build(&self) -> NetworkTopology {
        // All presets are statically valid; `expect` documents that invariant.
        let build = |dims: Vec<DimensionSpec>| {
            NetworkTopology::new(self.name(), dims).expect("preset topologies are statically valid")
        };
        let dim = |kind, size, link_gbps, links, latency_ns| {
            DimensionSpec::new(kind, size, link_gbps, links, latency_ns)
                .expect("preset dimensions are statically valid")
        };
        use TopologyKind::{FullyConnected as Fc, Ring, Switch as Sw};
        match self {
            // Current platform (Sec. 3.2): dim1 1200 Gbps, dim2 100 Gbps.
            PresetTopology::Current2d => build(vec![
                dim(Sw, 16, 200.0, 6, 700.0),
                dim(Sw, 64, 100.0, 1, 1700.0),
            ]),
            PresetTopology::Sw2d => build(vec![
                dim(Sw, 16, 200.0, 6, 700.0),
                dim(Sw, 64, 800.0, 1, 1700.0),
            ]),
            PresetTopology::SwSwSw3dHomo => build(vec![
                dim(Sw, 16, 200.0, 4, 700.0),
                dim(Sw, 8, 200.0, 4, 700.0),
                dim(Sw, 8, 800.0, 1, 1700.0),
            ]),
            PresetTopology::SwSwSw3dHetero => build(vec![
                dim(Sw, 16, 200.0, 8, 700.0),
                dim(Sw, 8, 200.0, 4, 700.0),
                dim(Sw, 8, 400.0, 1, 1700.0),
            ]),
            PresetTopology::FcRingSw3d => build(vec![
                dim(Fc, 8, 200.0, 7, 700.0),
                dim(Ring, 16, 200.0, 4, 700.0),
                dim(Sw, 8, 400.0, 1, 1700.0),
            ]),
            PresetTopology::RingSwSwSw4d => build(vec![
                dim(Ring, 4, 1000.0, 2, 20.0),
                dim(Sw, 4, 200.0, 8, 700.0),
                dim(Sw, 8, 200.0, 4, 700.0),
                dim(Sw, 8, 400.0, 1, 1700.0),
            ]),
            PresetTopology::RingFcRingSw4d => build(vec![
                dim(Ring, 4, 1500.0, 2, 20.0),
                dim(Fc, 8, 200.0, 7, 700.0),
                dim(Ring, 4, 200.0, 6, 700.0),
                dim(Sw, 8, 800.0, 1, 1700.0),
            ]),
        }
    }
}

/// The "current generation" 2-dimensional platform used as the reference point
/// in Fig. 4 (1200 Gbps intra-node, 100 Gbps NIC, 16×64 = 1024 NPUs).
pub fn current_generation_2d() -> NetworkTopology {
    PresetTopology::Current2d.build()
}

/// The six next-generation platforms of Table 2, in the paper's order.
pub fn next_generation_suite() -> Vec<NetworkTopology> {
    PresetTopology::next_generation()
        .iter()
        .map(PresetTopology::build)
        .collect()
}

/// Looks a preset up by its paper name (e.g., `"3D-FC_Ring_SW"`).
///
/// # Errors
///
/// Returns [`NetError::UnknownPreset`] if the name does not match any preset.
pub fn preset_by_name(name: &str) -> Result<NetworkTopology, NetError> {
    PresetTopology::all()
        .iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
        .map(PresetTopology::build)
        .ok_or_else(|| NetError::UnknownPreset {
            name: name.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_have_1024_npus() {
        for preset in PresetTopology::all() {
            let topo = preset.build();
            assert_eq!(topo.num_npus(), 1024, "{}", topo.name());
        }
    }

    #[test]
    fn table2_sizes_match_paper() {
        assert_eq!(PresetTopology::Sw2d.build().dim_sizes(), vec![16, 64]);
        assert_eq!(
            PresetTopology::SwSwSw3dHomo.build().dim_sizes(),
            vec![16, 8, 8]
        );
        assert_eq!(
            PresetTopology::SwSwSw3dHetero.build().dim_sizes(),
            vec![16, 8, 8]
        );
        assert_eq!(
            PresetTopology::FcRingSw3d.build().dim_sizes(),
            vec![8, 16, 8]
        );
        assert_eq!(
            PresetTopology::RingSwSwSw4d.build().dim_sizes(),
            vec![4, 4, 8, 8]
        );
        assert_eq!(
            PresetTopology::RingFcRingSw4d.build().dim_sizes(),
            vec![4, 8, 4, 8]
        );
    }

    #[test]
    fn table2_aggregate_bandwidths_match_paper() {
        let agg = |p: PresetTopology| -> Vec<f64> {
            p.build()
                .dims()
                .iter()
                .map(|d| d.aggregate_bandwidth().as_gbps())
                .collect()
        };
        assert_eq!(agg(PresetTopology::Sw2d), vec![1200.0, 800.0]);
        assert_eq!(agg(PresetTopology::SwSwSw3dHomo), vec![800.0, 800.0, 800.0]);
        assert_eq!(
            agg(PresetTopology::SwSwSw3dHetero),
            vec![1600.0, 800.0, 400.0]
        );
        assert_eq!(agg(PresetTopology::FcRingSw3d), vec![1400.0, 800.0, 400.0]);
        assert_eq!(
            agg(PresetTopology::RingSwSwSw4d),
            vec![2000.0, 1600.0, 800.0, 400.0]
        );
        assert_eq!(
            agg(PresetTopology::RingFcRingSw4d),
            vec![3000.0, 1400.0, 1200.0, 800.0]
        );
    }

    #[test]
    fn table2_latencies_match_paper() {
        let lat = |p: PresetTopology| -> Vec<f64> {
            p.build()
                .dims()
                .iter()
                .map(|d| d.step_latency_ns())
                .collect()
        };
        assert_eq!(lat(PresetTopology::Sw2d), vec![700.0, 1700.0]);
        assert_eq!(
            lat(PresetTopology::RingSwSwSw4d),
            vec![20.0, 700.0, 700.0, 1700.0]
        );
        assert_eq!(
            lat(PresetTopology::RingFcRingSw4d),
            vec![20.0, 700.0, 700.0, 1700.0]
        );
    }

    #[test]
    fn table2_topology_kinds_match_names() {
        use TopologyKind::*;
        let kinds = |p: PresetTopology| -> Vec<TopologyKind> {
            p.build().dims().iter().map(|d| d.kind()).collect()
        };
        assert_eq!(
            kinds(PresetTopology::FcRingSw3d),
            vec![FullyConnected, Ring, Switch]
        );
        assert_eq!(
            kinds(PresetTopology::RingSwSwSw4d),
            vec![Ring, Switch, Switch, Switch]
        );
        assert_eq!(
            kinds(PresetTopology::RingFcRingSw4d),
            vec![Ring, FullyConnected, Ring, Switch]
        );
    }

    #[test]
    fn current_platform_bandwidths() {
        let topo = current_generation_2d();
        assert_eq!(topo.dim_bandwidth(0).unwrap().as_gbps(), 1200.0);
        assert_eq!(topo.dim_bandwidth(1).unwrap().as_gbps(), 100.0);
    }

    #[test]
    fn next_generation_suite_has_six_entries() {
        let suite = next_generation_suite();
        assert_eq!(suite.len(), 6);
        assert_eq!(suite[0].name(), "2D-SW_SW");
        assert_eq!(suite[5].name(), "4D-Ring_FC_Ring_SW");
    }

    #[test]
    fn preset_lookup_by_name() {
        assert_eq!(preset_by_name("3D-FC_Ring_SW").unwrap().num_dims(), 3);
        assert_eq!(preset_by_name("3d-fc_ring_sw").unwrap().num_dims(), 3);
        assert!(matches!(
            preset_by_name("5D-everything"),
            Err(NetError::UnknownPreset { .. })
        ));
    }
}
