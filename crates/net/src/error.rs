//! Error type for topology construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating network topologies.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A dimension was declared with fewer than two participating NPUs.
    DimensionTooSmall {
        /// Index of the offending dimension (0-based).
        dim: usize,
        /// Declared size.
        size: usize,
    },
    /// A bandwidth value was zero, negative, NaN or infinite.
    InvalidBandwidth {
        /// Index of the offending dimension (0-based), if known.
        dim: Option<usize>,
        /// The rejected value in Gbps.
        gbps: f64,
    },
    /// A latency value was negative, NaN or infinite.
    InvalidLatency {
        /// Index of the offending dimension (0-based), if known.
        dim: Option<usize>,
        /// The rejected value in nanoseconds.
        nanos: f64,
    },
    /// The number of links per NPU must be at least one.
    InvalidLinkCount {
        /// Index of the offending dimension (0-based), if known.
        dim: Option<usize>,
    },
    /// A topology was built without any dimensions.
    EmptyTopology,
    /// A dimension index was out of range for the topology.
    DimensionOutOfRange {
        /// The requested dimension index.
        dim: usize,
        /// The number of dimensions present.
        num_dims: usize,
    },
    /// An NPU identifier was out of range for the topology.
    NpuOutOfRange {
        /// The requested NPU id.
        npu: usize,
        /// The number of NPUs present.
        num_npus: usize,
    },
    /// A switch (halving-doubling) dimension requires a power-of-two size.
    NonPowerOfTwoSwitch {
        /// Index of the offending dimension (0-based).
        dim: usize,
        /// Declared size.
        size: usize,
    },
    /// A preset with the given name does not exist.
    UnknownPreset {
        /// The requested preset name.
        name: String,
    },
    /// A sub-topology was requested with no dimensions or with duplicates.
    InvalidSubTopology {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::DimensionTooSmall { dim, size } => {
                write!(
                    f,
                    "dimension {dim} has size {size}, but at least 2 NPUs are required"
                )
            }
            NetError::InvalidBandwidth { dim, gbps } => match dim {
                Some(d) => write!(f, "dimension {d} has invalid bandwidth {gbps} Gbps"),
                None => write!(f, "invalid bandwidth {gbps} Gbps"),
            },
            NetError::InvalidLatency { dim, nanos } => match dim {
                Some(d) => write!(f, "dimension {d} has invalid latency {nanos} ns"),
                None => write!(f, "invalid latency {nanos} ns"),
            },
            NetError::InvalidLinkCount { dim } => match dim {
                Some(d) => write!(f, "dimension {d} must have at least one link per NPU"),
                None => write!(f, "at least one link per NPU is required"),
            },
            NetError::EmptyTopology => write!(f, "a topology requires at least one dimension"),
            NetError::DimensionOutOfRange { dim, num_dims } => {
                write!(
                    f,
                    "dimension index {dim} out of range for topology with {num_dims} dimensions"
                )
            }
            NetError::NpuOutOfRange { npu, num_npus } => {
                write!(
                    f,
                    "NPU id {npu} out of range for topology with {num_npus} NPUs"
                )
            }
            NetError::NonPowerOfTwoSwitch { dim, size } => {
                write!(
                    f,
                    "switch dimension {dim} has size {size}, which is not a power of two"
                )
            }
            NetError::UnknownPreset { name } => write!(f, "unknown preset topology `{name}`"),
            NetError::InvalidSubTopology { reason } => write!(f, "invalid sub-topology: {reason}"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            NetError::DimensionTooSmall { dim: 1, size: 1 },
            NetError::InvalidBandwidth {
                dim: Some(0),
                gbps: -1.0,
            },
            NetError::InvalidBandwidth {
                dim: None,
                gbps: f64::NAN,
            },
            NetError::InvalidLatency {
                dim: Some(2),
                nanos: -5.0,
            },
            NetError::InvalidLatency {
                dim: None,
                nanos: f64::INFINITY,
            },
            NetError::InvalidLinkCount { dim: Some(0) },
            NetError::InvalidLinkCount { dim: None },
            NetError::EmptyTopology,
            NetError::DimensionOutOfRange {
                dim: 4,
                num_dims: 2,
            },
            NetError::NpuOutOfRange {
                npu: 1024,
                num_npus: 1024,
            },
            NetError::NonPowerOfTwoSwitch { dim: 1, size: 6 },
            NetError::UnknownPreset {
                name: "nope".to_string(),
            },
            NetError::InvalidSubTopology {
                reason: "empty".to_string(),
            },
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase() || text.starts_with("NPU"));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<NetError>();
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(NetError::EmptyTopology, NetError::EmptyTopology);
        assert_ne!(
            NetError::EmptyTopology,
            NetError::DimensionTooSmall { dim: 0, size: 1 }
        );
    }
}
