//! Bandwidth-provisioning analysis (Sec. 6.3 of the paper).
//!
//! For any two dimensions `dimK` and `dimL` with `K < L`, the paper compares
//! the actual bandwidth of `dimL` against the "just enough" value
//! `BW(dimK) / (P_K × P_{K+1} × ... × P_{L-1})`:
//!
//! * **Just enough** — the baseline (and Themis) can fully utilise both
//!   dimensions.
//! * **Over-provisioned** — `dimL` has more bandwidth than the baseline
//!   schedule can use; Themis redistributes load and recovers the excess.
//! * **Under-provisioned** — `dimL` has less bandwidth than even a balanced
//!   schedule needs; no scheduling policy can fully drive both dimensions, so
//!   the design point should be avoided.

use crate::topology::NetworkTopology;
use std::fmt;

/// Classification of a pair of dimensions according to Sec. 6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProvisioningClass {
    /// `BW(dimK) = P_K × ... × P_{L-1} × BW(dimL)` (within tolerance).
    JustEnough,
    /// `BW(dimK) < P_K × ... × P_{L-1} × BW(dimL)`: the outer dimension has
    /// excess bandwidth that only a dynamic scheduler (Themis) can exploit.
    OverProvisioned,
    /// `BW(dimK) > P_K × ... × P_{L-1} × BW(dimL)`: the outer dimension is a
    /// hard bottleneck; no chunk schedule can fully drive both dimensions.
    UnderProvisioned,
}

impl fmt::Display for ProvisioningClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ProvisioningClass::JustEnough => "just-enough",
            ProvisioningClass::OverProvisioned => "over-provisioned",
            ProvisioningClass::UnderProvisioned => "under-provisioned",
        };
        f.write_str(text)
    }
}

/// Result of classifying one `(dimK, dimL)` pair.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PairClassification {
    /// Inner dimension index (`K`).
    pub inner: usize,
    /// Outer dimension index (`L`, with `L > K`).
    pub outer: usize,
    /// The actual bandwidth of the outer dimension, Gbps.
    pub outer_bandwidth_gbps: f64,
    /// The "just enough" bandwidth of the outer dimension implied by the
    /// baseline schedule, Gbps.
    pub just_enough_bandwidth_gbps: f64,
    /// Ratio `outer_bandwidth / just_enough_bandwidth` (>1 means over-provisioned).
    pub provisioning_ratio: f64,
    /// The classification.
    pub class: ProvisioningClass,
}

/// Full per-topology provisioning report.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProvisioningReport {
    /// Topology name the report was generated for.
    pub topology: String,
    /// Classification of every ordered dimension pair `(K, L)` with `K < L`.
    pub pairs: Vec<PairClassification>,
}

impl ProvisioningReport {
    /// `true` if any pair is under-provisioned (a design point the paper says
    /// should be prohibited).
    pub fn has_underprovisioned_pair(&self) -> bool {
        self.pairs
            .iter()
            .any(|p| p.class == ProvisioningClass::UnderProvisioned)
    }

    /// `true` if any pair is over-provisioned (i.e. Themis has head-room that
    /// the baseline scheduling cannot exploit).
    pub fn has_overprovisioned_pair(&self) -> bool {
        self.pairs
            .iter()
            .any(|p| p.class == ProvisioningClass::OverProvisioned)
    }
}

impl fmt::Display for ProvisioningReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "provisioning report for {}", self.topology)?;
        for pair in &self.pairs {
            writeln!(
                f,
                "  dim{} vs dim{}: {:.1} Gbps vs just-enough {:.1} Gbps (ratio {:.2}) => {}",
                pair.inner + 1,
                pair.outer + 1,
                pair.outer_bandwidth_gbps,
                pair.just_enough_bandwidth_gbps,
                pair.provisioning_ratio,
                pair.class
            )?;
        }
        Ok(())
    }
}

/// Relative tolerance used to treat a pair as "just enough".
const JUST_ENOUGH_TOLERANCE: f64 = 0.05;

/// Classifies a single `(inner, outer)` dimension pair of `topo`.
///
/// # Panics
///
/// Panics if `inner >= outer` or `outer` is out of range; use
/// [`classify_topology`] for a checked sweep over all pairs.
pub fn classify_pair(topo: &NetworkTopology, inner: usize, outer: usize) -> PairClassification {
    assert!(
        inner < outer,
        "inner dimension index must be smaller than outer"
    );
    assert!(
        outer < topo.num_dims(),
        "outer dimension index out of range"
    );
    let inner_bw = topo.dims()[inner].aggregate_bandwidth().as_gbps();
    let outer_bw = topo.dims()[outer].aggregate_bandwidth().as_gbps();
    // The baseline shrinks the chunk by P_K × ... × P_{L-1} before it reaches
    // dimL, so "just enough" outer bandwidth is inner bandwidth divided by
    // that product.
    let shrink: usize = (inner..outer).map(|d| topo.dims()[d].size()).product();
    let just_enough = inner_bw / shrink as f64;
    let ratio = outer_bw / just_enough;
    let class = if (ratio - 1.0).abs() <= JUST_ENOUGH_TOLERANCE {
        ProvisioningClass::JustEnough
    } else if ratio > 1.0 {
        ProvisioningClass::OverProvisioned
    } else {
        ProvisioningClass::UnderProvisioned
    };
    PairClassification {
        inner,
        outer,
        outer_bandwidth_gbps: outer_bw,
        just_enough_bandwidth_gbps: just_enough,
        provisioning_ratio: ratio,
        class,
    }
}

/// Classifies every ordered dimension pair of `topo`.
pub fn classify_topology(topo: &NetworkTopology) -> ProvisioningReport {
    let mut pairs = Vec::new();
    for inner in 0..topo.num_dims() {
        for outer in (inner + 1)..topo.num_dims() {
            pairs.push(classify_pair(topo, inner, outer));
        }
    }
    ProvisioningReport {
        topology: topo.name().to_string(),
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::{DimensionSpec, TopologyKind};
    use crate::presets::PresetTopology;

    fn two_dim(bw1: f64, bw2: f64, p1: usize, p2: usize) -> NetworkTopology {
        NetworkTopology::builder("pair")
            .dimension(
                DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, p1, bw1, 0.0)
                    .unwrap(),
            )
            .dimension(
                DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, p2, bw2, 0.0)
                    .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn just_enough_case() {
        // BW(dim1) = 4 × BW(dim2) and P1 = 4 → just enough (Sec. 3.3 example).
        let topo = two_dim(400.0, 100.0, 4, 4);
        let pair = classify_pair(&topo, 0, 1);
        assert_eq!(pair.class, ProvisioningClass::JustEnough);
        assert!((pair.provisioning_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn over_provisioned_case() {
        // Fig. 5: BW(dim1) = 2 × BW(dim2) with P1 = 4 → dim2 over-provisioned.
        let topo = two_dim(200.0, 100.0, 4, 4);
        let pair = classify_pair(&topo, 0, 1);
        assert_eq!(pair.class, ProvisioningClass::OverProvisioned);
        assert!(pair.provisioning_ratio > 1.0);
    }

    #[test]
    fn under_provisioned_case() {
        // dim1 has far more bandwidth than dim2 can absorb even after shrink.
        let topo = two_dim(1200.0, 100.0, 4, 4);
        let pair = classify_pair(&topo, 0, 1);
        assert_eq!(pair.class, ProvisioningClass::UnderProvisioned);
        assert!(pair.provisioning_ratio < 1.0);
    }

    #[test]
    fn current_platform_is_roughly_just_enough_or_under() {
        // Sec. 3.3: on the current platform the baseline utilises all of dim1
        // and 75 of the 100 Gbps of dim2 — i.e. dim2 is slightly over-provisioned.
        let topo = PresetTopology::Current2d.build();
        let report = classify_topology(&topo);
        assert_eq!(report.pairs.len(), 1);
        let pair = &report.pairs[0];
        assert!((pair.just_enough_bandwidth_gbps - 75.0).abs() < 1e-9);
        assert_eq!(pair.class, ProvisioningClass::OverProvisioned);
    }

    #[test]
    fn next_gen_platforms_are_overprovisioned_somewhere() {
        for preset in PresetTopology::next_generation() {
            let report = classify_topology(&preset.build());
            assert!(
                report.has_overprovisioned_pair(),
                "{} should have at least one over-provisioned pair",
                preset.name()
            );
        }
    }

    #[test]
    fn report_display_mentions_every_pair() {
        let report = classify_topology(&PresetTopology::SwSwSw3dHomo.build());
        assert_eq!(report.pairs.len(), 3);
        let text = report.to_string();
        assert!(text.contains("dim1 vs dim2"));
        assert!(text.contains("dim2 vs dim3"));
    }

    #[test]
    #[should_panic(expected = "inner dimension index must be smaller")]
    fn classify_pair_rejects_bad_order() {
        let topo = two_dim(100.0, 100.0, 4, 4);
        classify_pair(&topo, 1, 1);
    }
}
