//! Per-dimension network specification.
//!
//! A *dimension* is one level of the training platform's network hierarchy
//! (e.g., chiplet-to-chiplet, package-to-package inside a server node,
//! node-to-node inside a pod, pod-to-pod over NICs). Every NPU is a member of
//! exactly one communicator group per dimension; the group size, physical
//! topology, bandwidth and latency are captured by [`DimensionSpec`].

use crate::bandwidth::Bandwidth;
use crate::error::NetError;
use std::fmt;

/// Physical topology of a single network dimension (Table 1 of the paper).
///
/// The topology determines which contention-free, topology-aware collective
/// algorithm is used for that dimension:
///
/// | Topology        | Collective algorithm |
/// |-----------------|----------------------|
/// | Ring            | Ring                 |
/// | FullyConnected  | Direct               |
/// | Switch          | Halving-Doubling     |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TopologyKind {
    /// NPUs connected in a physical ring (e.g., intra-package links).
    Ring,
    /// Every NPU pair is directly connected (e.g., NVSwitch-less full mesh).
    FullyConnected,
    /// NPUs connected through a non-blocking switch (e.g., NIC + ToR switch).
    Switch,
}

impl TopologyKind {
    /// Short lowercase label used in topology names (e.g., `SW`, `Ring`, `FC`).
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Ring => "Ring",
            TopologyKind::FullyConnected => "FC",
            TopologyKind::Switch => "SW",
        }
    }

    /// All topology kinds, in declaration order.
    pub fn all() -> [TopologyKind; 3] {
        [
            TopologyKind::Ring,
            TopologyKind::FullyConnected,
            TopologyKind::Switch,
        ]
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Specification of one network dimension.
///
/// Bandwidths follow the paper's convention: `link_bandwidth` is the
/// uni-directional bandwidth of one physical link and `links_per_npu` is the
/// number of such links each NPU dedicates to this dimension, so the
/// *aggregate* per-NPU bandwidth (the "Aggr BW/NPU" column of Table 2) is
/// their product.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DimensionSpec {
    kind: TopologyKind,
    size: usize,
    link_bandwidth: Bandwidth,
    links_per_npu: usize,
    step_latency_ns: f64,
}

impl DimensionSpec {
    /// Creates a new dimension spec.
    ///
    /// * `kind` — physical topology of the dimension.
    /// * `size` — number of NPUs in one communicator group of this dimension.
    /// * `link_bandwidth_gbps` — uni-directional bandwidth of one link, Gbps.
    /// * `links_per_npu` — number of links each NPU dedicates to this dimension.
    /// * `step_latency_ns` — direct NPU-to-NPU latency for a minimum-size
    ///   message (the `step_latency` of Sec. 4.4), in nanoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if `size < 2`, the bandwidth is not finite and
    /// positive, `links_per_npu == 0`, or the latency is negative/not finite.
    pub fn new(
        kind: TopologyKind,
        size: usize,
        link_bandwidth_gbps: f64,
        links_per_npu: usize,
        step_latency_ns: f64,
    ) -> Result<Self, NetError> {
        if size < 2 {
            return Err(NetError::DimensionTooSmall { dim: 0, size });
        }
        let link_bandwidth = Bandwidth::from_gbps(link_bandwidth_gbps);
        if !link_bandwidth.is_valid() {
            return Err(NetError::InvalidBandwidth {
                dim: None,
                gbps: link_bandwidth_gbps,
            });
        }
        if links_per_npu == 0 {
            return Err(NetError::InvalidLinkCount { dim: None });
        }
        if !step_latency_ns.is_finite() || step_latency_ns < 0.0 {
            return Err(NetError::InvalidLatency {
                dim: None,
                nanos: step_latency_ns,
            });
        }
        Ok(DimensionSpec {
            kind,
            size,
            link_bandwidth,
            links_per_npu,
            step_latency_ns,
        })
    }

    /// Convenience constructor taking the aggregate per-NPU bandwidth directly
    /// (a single logical link).
    ///
    /// # Errors
    ///
    /// Same validation rules as [`DimensionSpec::new`].
    pub fn with_aggregate_bandwidth(
        kind: TopologyKind,
        size: usize,
        aggregate_bandwidth_gbps: f64,
        step_latency_ns: f64,
    ) -> Result<Self, NetError> {
        DimensionSpec::new(kind, size, aggregate_bandwidth_gbps, 1, step_latency_ns)
    }

    /// Physical topology of the dimension.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of NPUs participating in one communicator group of this dimension.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Uni-directional bandwidth of a single link.
    pub fn link_bandwidth(&self) -> Bandwidth {
        self.link_bandwidth
    }

    /// Number of links each NPU dedicates to this dimension.
    pub fn links_per_npu(&self) -> usize {
        self.links_per_npu
    }

    /// Aggregate per-NPU bandwidth on this dimension
    /// (`link_bandwidth × links_per_npu`, the "Aggr BW/NPU" of Table 2).
    pub fn aggregate_bandwidth(&self) -> Bandwidth {
        self.link_bandwidth * self.links_per_npu as f64
    }

    /// Step latency: direct NPU-to-NPU latency for a minimum-size message, ns.
    pub fn step_latency_ns(&self) -> f64 {
        self.step_latency_ns
    }

    /// Returns a copy of this spec with a different aggregate bandwidth,
    /// preserving the link count (the link bandwidth is rescaled).
    pub fn with_scaled_bandwidth(&self, factor: f64) -> DimensionSpec {
        DimensionSpec {
            link_bandwidth: self.link_bandwidth * factor,
            ..self.clone()
        }
    }

    /// Validates the spec in the context of dimension index `dim`
    /// (used by the topology builder to attach indices to errors).
    pub(crate) fn validate_at(&self, dim: usize) -> Result<(), NetError> {
        if self.size < 2 {
            return Err(NetError::DimensionTooSmall {
                dim,
                size: self.size,
            });
        }
        if !self.link_bandwidth.is_valid() {
            return Err(NetError::InvalidBandwidth {
                dim: Some(dim),
                gbps: self.link_bandwidth.as_gbps(),
            });
        }
        if self.links_per_npu == 0 {
            return Err(NetError::InvalidLinkCount { dim: Some(dim) });
        }
        if !self.step_latency_ns.is_finite() || self.step_latency_ns < 0.0 {
            return Err(NetError::InvalidLatency {
                dim: Some(dim),
                nanos: self.step_latency_ns,
            });
        }
        Ok(())
    }
}

impl fmt::Display for DimensionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(P={}, {} x{} links, {} ns)",
            self.kind, self.size, self.link_bandwidth, self.links_per_npu, self.step_latency_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_dimension() {
        let dim = DimensionSpec::new(TopologyKind::Switch, 16, 200.0, 6, 700.0).unwrap();
        assert_eq!(dim.size(), 16);
        assert_eq!(dim.kind(), TopologyKind::Switch);
        assert_eq!(dim.aggregate_bandwidth().as_gbps(), 1200.0);
        assert_eq!(dim.step_latency_ns(), 700.0);
        assert_eq!(dim.links_per_npu(), 6);
    }

    #[test]
    fn aggregate_constructor_uses_single_link() {
        let dim =
            DimensionSpec::with_aggregate_bandwidth(TopologyKind::Ring, 4, 1000.0, 20.0).unwrap();
        assert_eq!(dim.links_per_npu(), 1);
        assert_eq!(dim.aggregate_bandwidth().as_gbps(), 1000.0);
    }

    #[test]
    fn rejects_size_below_two() {
        let err = DimensionSpec::new(TopologyKind::Ring, 1, 100.0, 1, 0.0).unwrap_err();
        assert!(matches!(err, NetError::DimensionTooSmall { size: 1, .. }));
    }

    #[test]
    fn rejects_invalid_bandwidth() {
        for bw in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = DimensionSpec::new(TopologyKind::Ring, 4, bw, 1, 0.0).unwrap_err();
            assert!(matches!(err, NetError::InvalidBandwidth { .. }), "bw={bw}");
        }
    }

    #[test]
    fn rejects_zero_links() {
        let err = DimensionSpec::new(TopologyKind::Switch, 4, 100.0, 0, 0.0).unwrap_err();
        assert!(matches!(err, NetError::InvalidLinkCount { .. }));
    }

    #[test]
    fn rejects_invalid_latency() {
        for lat in [-1.0, f64::NAN, f64::INFINITY] {
            let err = DimensionSpec::new(TopologyKind::Switch, 4, 100.0, 1, lat).unwrap_err();
            assert!(matches!(err, NetError::InvalidLatency { .. }), "lat={lat}");
        }
    }

    #[test]
    fn scaled_bandwidth() {
        let dim = DimensionSpec::new(TopologyKind::Switch, 8, 400.0, 2, 700.0).unwrap();
        let half = dim.with_scaled_bandwidth(0.5);
        assert_eq!(half.aggregate_bandwidth().as_gbps(), 400.0);
        assert_eq!(half.size(), 8);
    }

    #[test]
    fn topology_kind_labels() {
        assert_eq!(TopologyKind::Ring.to_string(), "Ring");
        assert_eq!(TopologyKind::FullyConnected.to_string(), "FC");
        assert_eq!(TopologyKind::Switch.to_string(), "SW");
        assert_eq!(TopologyKind::all().len(), 3);
    }

    #[test]
    fn display_contains_key_fields() {
        let dim = DimensionSpec::new(TopologyKind::Ring, 4, 1000.0, 2, 20.0).unwrap();
        let text = dim.to_string();
        assert!(text.contains("Ring"));
        assert!(text.contains("P=4"));
        assert!(text.contains("1000 Gbps"));
    }
}
