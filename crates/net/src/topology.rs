//! Multi-dimensional network topology.
//!
//! A [`NetworkTopology`] is an ordered list of [`DimensionSpec`]s. Dimension 0
//! ("dim1" in the paper) is the innermost, usually highest-bandwidth level;
//! the last dimension is the scale-out (NIC) level. The total machine size is
//! the product of the per-dimension sizes, and every NPU is addressed either
//! by a flat [`NpuId`] or a per-dimension [`NpuCoord`].

use crate::bandwidth::Bandwidth;
use crate::dimension::{DimensionSpec, TopologyKind};
use crate::error::NetError;
use std::fmt;

/// Flat identifier of an NPU within a topology (row-major over dimensions,
/// with dimension 0 varying fastest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NpuId(pub usize);

impl fmt::Display for NpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "npu{}", self.0)
    }
}

/// Per-dimension coordinates of an NPU.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NpuCoord(pub Vec<usize>);

impl NpuCoord {
    /// Coordinate along dimension `dim`.
    pub fn along(&self, dim: usize) -> Option<usize> {
        self.0.get(dim).copied()
    }
}

impl fmt::Display for NpuCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A multi-dimensional training-platform network (Fig. 1 of the paper).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkTopology {
    name: String,
    dims: Vec<DimensionSpec>,
}

impl NetworkTopology {
    /// Starts building a topology with the given display name.
    pub fn builder(name: impl Into<String>) -> NetworkTopologyBuilder {
        NetworkTopologyBuilder {
            name: name.into(),
            dims: Vec::new(),
        }
    }

    /// Creates a topology directly from a list of dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyTopology`] for an empty dimension list or any
    /// per-dimension validation error.
    pub fn new(name: impl Into<String>, dims: Vec<DimensionSpec>) -> Result<Self, NetError> {
        let mut builder = NetworkTopology::builder(name);
        for dim in dims {
            builder = builder.dimension(dim);
        }
        builder.build()
    }

    /// Human-readable topology name (e.g., `3D-SW_SW_SW_homo`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of network dimensions.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of NPUs (product of per-dimension sizes).
    pub fn num_npus(&self) -> usize {
        self.dims.iter().map(DimensionSpec::size).product()
    }

    /// The dimension specs, innermost first.
    pub fn dims(&self) -> &[DimensionSpec] {
        &self.dims
    }

    /// A single dimension spec.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DimensionOutOfRange`] if `dim` is out of range.
    pub fn dim(&self, dim: usize) -> Result<&DimensionSpec, NetError> {
        self.dims.get(dim).ok_or(NetError::DimensionOutOfRange {
            dim,
            num_dims: self.dims.len(),
        })
    }

    /// Per-dimension sizes `P_1 × P_2 × ... × P_D`.
    pub fn dim_sizes(&self) -> Vec<usize> {
        self.dims.iter().map(DimensionSpec::size).collect()
    }

    /// Aggregate per-NPU bandwidth of one dimension.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DimensionOutOfRange`] if `dim` is out of range.
    pub fn dim_bandwidth(&self, dim: usize) -> Result<Bandwidth, NetError> {
        Ok(self.dim(dim)?.aggregate_bandwidth())
    }

    /// Sum of aggregate per-NPU bandwidth across all dimensions
    /// (the denominator of the paper's "Ideal" latency and of the weighted
    /// average BW utilisation).
    pub fn total_bandwidth(&self) -> Bandwidth {
        self.dims
            .iter()
            .map(DimensionSpec::aggregate_bandwidth)
            .sum()
    }

    /// Converts a flat NPU id into per-dimension coordinates
    /// (dimension 0 varies fastest).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NpuOutOfRange`] if the id is not within the machine.
    pub fn coord_of(&self, npu: NpuId) -> Result<NpuCoord, NetError> {
        let num_npus = self.num_npus();
        if npu.0 >= num_npus {
            return Err(NetError::NpuOutOfRange {
                npu: npu.0,
                num_npus,
            });
        }
        let mut remaining = npu.0;
        let mut coord = Vec::with_capacity(self.dims.len());
        for dim in &self.dims {
            coord.push(remaining % dim.size());
            remaining /= dim.size();
        }
        Ok(NpuCoord(coord))
    }

    /// Converts per-dimension coordinates into a flat NPU id.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSubTopology`] if the coordinate rank does not
    /// match the topology, or [`NetError::NpuOutOfRange`] if a coordinate
    /// exceeds its dimension size.
    pub fn id_of(&self, coord: &NpuCoord) -> Result<NpuId, NetError> {
        if coord.0.len() != self.dims.len() {
            return Err(NetError::InvalidSubTopology {
                reason: format!(
                    "coordinate has {} components but the topology has {} dimensions",
                    coord.0.len(),
                    self.dims.len()
                ),
            });
        }
        let mut id = 0usize;
        let mut stride = 1usize;
        for (c, dim) in coord.0.iter().zip(self.dims.iter()) {
            if *c >= dim.size() {
                return Err(NetError::NpuOutOfRange {
                    npu: *c,
                    num_npus: dim.size(),
                });
            }
            id += c * stride;
            stride *= dim.size();
        }
        Ok(NpuId(id))
    }

    /// The communicator peers of `npu` along dimension `dim`: all NPUs that
    /// share every coordinate with `npu` except the one along `dim`.
    ///
    /// The returned list always includes `npu` itself and has length
    /// `P_dim`, ordered by the coordinate along `dim`.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` or `npu` are out of range.
    pub fn peers_along(&self, npu: NpuId, dim: usize) -> Result<Vec<NpuId>, NetError> {
        let spec = self.dim(dim)?;
        let coord = self.coord_of(npu)?;
        let mut peers = Vec::with_capacity(spec.size());
        for c in 0..spec.size() {
            let mut peer_coord = coord.clone();
            peer_coord.0[dim] = c;
            peers.push(self.id_of(&peer_coord)?);
        }
        Ok(peers)
    }

    /// Extracts a sub-topology containing only the listed dimensions (in the
    /// listed order). Used to build communicator groups for model-parallel vs
    /// data-parallel traffic.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSubTopology`] for an empty or duplicated
    /// dimension list, or [`NetError::DimensionOutOfRange`] for a bad index.
    pub fn subtopology(&self, dims: &[usize], name: impl Into<String>) -> Result<Self, NetError> {
        if dims.is_empty() {
            return Err(NetError::InvalidSubTopology {
                reason: "a sub-topology requires at least one dimension".to_string(),
            });
        }
        let mut seen = vec![false; self.dims.len()];
        let mut specs = Vec::with_capacity(dims.len());
        for &d in dims {
            let spec = self.dim(d)?;
            if seen[d] {
                return Err(NetError::InvalidSubTopology {
                    reason: format!("dimension {d} listed more than once"),
                });
            }
            seen[d] = true;
            specs.push(spec.clone());
        }
        NetworkTopology::new(name, specs)
    }

    /// Splits the topology into a leading prefix of dimensions whose product
    /// of sizes covers at least `group_size` NPUs and the remaining suffix.
    ///
    /// This models the paper's Transformer-1T partitioning, where the model is
    /// model-parallel "across the first dimensions up to 128 NPUs" and
    /// data-parallel across the remaining dimensions.
    ///
    /// Returns `(prefix_dims, suffix_dims)` as dimension indices.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSubTopology`] if `group_size` cannot be
    /// covered by a prefix of whole dimensions (e.g., 24 on a 16×8×8 machine).
    pub fn split_prefix_covering(
        &self,
        group_size: usize,
    ) -> Result<(Vec<usize>, Vec<usize>), NetError> {
        if group_size <= 1 {
            return Ok((Vec::new(), (0..self.num_dims()).collect()));
        }
        let mut product = 1usize;
        let mut prefix = Vec::new();
        for (i, dim) in self.dims.iter().enumerate() {
            if product >= group_size {
                break;
            }
            product *= dim.size();
            prefix.push(i);
        }
        if product != group_size {
            return Err(NetError::InvalidSubTopology {
                reason: format!(
                    "cannot cover a group of {group_size} NPUs with a whole-dimension prefix \
                     (closest prefix product is {product})"
                ),
            });
        }
        let suffix = (prefix.len()..self.num_dims()).collect();
        Ok((prefix, suffix))
    }

    /// Splits the machine into a *group* topology covering exactly
    /// `group_size` NPUs starting from the innermost dimension, and the
    /// *remainder* topology formed by the NPUs outside the group.
    ///
    /// Unlike [`NetworkTopology::split_prefix_covering`], a dimension may be
    /// factored into two logical sub-dimensions when the group boundary falls
    /// inside it (e.g. a 16×64 machine splits into a 16×8 group and an 8-wide
    /// remainder for a 128-NPU model-parallel group). The factored
    /// sub-dimensions keep the original per-NPU bandwidth and latency, which
    /// is accurate for switch dimensions and a close approximation for rings.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSubTopology`] if `group_size` does not
    /// evenly factor into the dimension sizes, is zero, or spans the whole
    /// machine (leaving an empty remainder).
    pub fn split_for_group(
        &self,
        group_size: usize,
        group_name: impl Into<String>,
        remainder_name: impl Into<String>,
    ) -> Result<(Self, Self), NetError> {
        if group_size < 2 {
            return Err(NetError::InvalidSubTopology {
                reason: format!("group size must be at least 2, got {group_size}"),
            });
        }
        if group_size >= self.num_npus() {
            return Err(NetError::InvalidSubTopology {
                reason: format!(
                    "group of {group_size} NPUs does not leave a remainder on a machine of {}",
                    self.num_npus()
                ),
            });
        }
        let mut remaining = group_size;
        let mut group_dims: Vec<DimensionSpec> = Vec::new();
        let mut rest_dims: Vec<DimensionSpec> = Vec::new();
        for dim in &self.dims {
            if remaining >= dim.size() {
                if !remaining.is_multiple_of(dim.size()) {
                    return Err(NetError::InvalidSubTopology {
                        reason: format!(
                            "group size {group_size} does not factor across dimension of size {}",
                            dim.size()
                        ),
                    });
                }
                group_dims.push(dim.clone());
                remaining /= dim.size();
            } else if remaining > 1 {
                if dim.size() % remaining != 0 {
                    return Err(NetError::InvalidSubTopology {
                        reason: format!(
                            "group size {group_size} does not factor across dimension of size {}",
                            dim.size()
                        ),
                    });
                }
                let inner = DimensionSpec::new(
                    dim.kind(),
                    remaining,
                    dim.link_bandwidth().as_gbps(),
                    dim.links_per_npu(),
                    dim.step_latency_ns(),
                )?;
                let outer = DimensionSpec::new(
                    dim.kind(),
                    dim.size() / remaining,
                    dim.link_bandwidth().as_gbps(),
                    dim.links_per_npu(),
                    dim.step_latency_ns(),
                )?;
                group_dims.push(inner);
                rest_dims.push(outer);
                remaining = 1;
            } else {
                rest_dims.push(dim.clone());
            }
        }
        if remaining != 1 || group_dims.is_empty() || rest_dims.is_empty() {
            return Err(NetError::InvalidSubTopology {
                reason: format!(
                    "group size {group_size} cannot be carved out of topology {}",
                    self.summary()
                ),
            });
        }
        Ok((
            NetworkTopology::new(group_name, group_dims)?,
            NetworkTopology::new(remainder_name, rest_dims)?,
        ))
    }

    /// Returns a renamed copy of this topology.
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        NetworkTopology {
            name: name.into(),
            dims: self.dims.clone(),
        }
    }

    /// Returns a copy of the topology with dimension `dim`'s bandwidth scaled
    /// by `factor` (used by the Sec. 6.3 provisioning sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DimensionOutOfRange`] if `dim` is out of range, or a
    /// validation error if the scaled bandwidth is invalid.
    pub fn with_dim_bandwidth_scaled(&self, dim: usize, factor: f64) -> Result<Self, NetError> {
        let _ = self.dim(dim)?;
        let mut dims = self.dims.clone();
        dims[dim] = dims[dim].with_scaled_bandwidth(factor);
        NetworkTopology::new(self.name.clone(), dims)
    }

    /// A cheap structural fingerprint of the topology: a 64-bit FNV-1a hash
    /// over the per-dimension kinds, sizes, bandwidths, link counts and step
    /// latencies.
    ///
    /// The display name is deliberately *excluded*: schedules depend only on
    /// the network structure, so two differently named but structurally
    /// identical topologies produce the same fingerprint and can share cached
    /// schedules (`themis-core`'s `ScheduleCache` keys on this value). The
    /// hash is deterministic across processes and runs.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.dims.len() as u64);
        for dim in &self.dims {
            mix(match dim.kind() {
                TopologyKind::Ring => 0,
                TopologyKind::FullyConnected => 1,
                TopologyKind::Switch => 2,
            });
            mix(dim.size() as u64);
            mix(dim.link_bandwidth().as_gbps().to_bits());
            mix(dim.links_per_npu() as u64);
            mix(dim.step_latency_ns().to_bits());
        }
        hash
    }

    /// Compact per-dimension summary, e.g. `16x64 [SW:1200Gbps, SW:800Gbps]`.
    pub fn summary(&self) -> String {
        let sizes: Vec<String> = self.dims.iter().map(|d| d.size().to_string()).collect();
        let specs: Vec<String> = self
            .dims
            .iter()
            .map(|d| format!("{}:{}Gbps", d.kind(), d.aggregate_bandwidth().as_gbps()))
            .collect();
        format!("{} [{}]", sizes.join("x"), specs.join(", "))
    }
}

impl fmt::Display for NetworkTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.summary())
    }
}

/// Builder for [`NetworkTopology`] (innermost dimension added first).
#[derive(Debug, Clone)]
pub struct NetworkTopologyBuilder {
    name: String,
    dims: Vec<DimensionSpec>,
}

impl NetworkTopologyBuilder {
    /// Appends the next (outer) dimension.
    #[must_use]
    pub fn dimension(mut self, dim: DimensionSpec) -> Self {
        self.dims.push(dim);
        self
    }

    /// Appends a dimension described inline.
    ///
    /// # Errors
    ///
    /// Returns the validation error of [`DimensionSpec::new`].
    pub fn dimension_with(
        self,
        kind: TopologyKind,
        size: usize,
        link_bandwidth_gbps: f64,
        links_per_npu: usize,
        step_latency_ns: f64,
    ) -> Result<Self, NetError> {
        let dim = DimensionSpec::new(
            kind,
            size,
            link_bandwidth_gbps,
            links_per_npu,
            step_latency_ns,
        )?;
        Ok(self.dimension(dim))
    }

    /// Finalises the topology.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyTopology`] when no dimension was added, or a
    /// per-dimension validation error (with the dimension index attached).
    pub fn build(self) -> Result<NetworkTopology, NetError> {
        if self.dims.is_empty() {
            return Err(NetError::EmptyTopology);
        }
        for (i, dim) in self.dims.iter().enumerate() {
            dim.validate_at(i)?;
        }
        Ok(NetworkTopology {
            name: self.name,
            dims: self.dims,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo_4x8() -> NetworkTopology {
        NetworkTopology::builder("test-4x8")
            .dimension(DimensionSpec::new(TopologyKind::Ring, 4, 1000.0, 2, 20.0).unwrap())
            .dimension(DimensionSpec::new(TopologyKind::Switch, 8, 400.0, 1, 700.0).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn basic_properties() {
        let topo = topo_4x8();
        assert_eq!(topo.num_dims(), 2);
        assert_eq!(topo.num_npus(), 32);
        assert_eq!(topo.dim_sizes(), vec![4, 8]);
        assert_eq!(topo.total_bandwidth().as_gbps(), 2400.0);
        assert_eq!(topo.dim_bandwidth(0).unwrap().as_gbps(), 2000.0);
        assert_eq!(topo.dim_bandwidth(1).unwrap().as_gbps(), 400.0);
        assert!(topo.dim_bandwidth(2).is_err());
        assert!(topo.to_string().contains("4x8"));
    }

    #[test]
    fn empty_topology_rejected() {
        let err = NetworkTopology::builder("empty").build().unwrap_err();
        assert_eq!(err, NetError::EmptyTopology);
    }

    #[test]
    fn coordinate_roundtrip() {
        let topo = topo_4x8();
        for id in 0..topo.num_npus() {
            let coord = topo.coord_of(NpuId(id)).unwrap();
            assert_eq!(coord.0.len(), 2);
            let back = topo.id_of(&coord).unwrap();
            assert_eq!(back, NpuId(id));
        }
    }

    #[test]
    fn coordinates_follow_row_major_order() {
        let topo = topo_4x8();
        assert_eq!(topo.coord_of(NpuId(0)).unwrap(), NpuCoord(vec![0, 0]));
        assert_eq!(topo.coord_of(NpuId(1)).unwrap(), NpuCoord(vec![1, 0]));
        assert_eq!(topo.coord_of(NpuId(4)).unwrap(), NpuCoord(vec![0, 1]));
        assert_eq!(topo.coord_of(NpuId(31)).unwrap(), NpuCoord(vec![3, 7]));
    }

    #[test]
    fn out_of_range_npus_rejected() {
        let topo = topo_4x8();
        assert!(topo.coord_of(NpuId(32)).is_err());
        assert!(topo.id_of(&NpuCoord(vec![4, 0])).is_err());
        assert!(topo.id_of(&NpuCoord(vec![0])).is_err());
    }

    #[test]
    fn peers_along_dimension() {
        let topo = topo_4x8();
        let peers0 = topo.peers_along(NpuId(5), 0).unwrap();
        assert_eq!(peers0.len(), 4);
        assert!(peers0.contains(&NpuId(5)));
        // All peers share the dim-1 coordinate.
        let base = topo.coord_of(NpuId(5)).unwrap().along(1).unwrap();
        for p in &peers0 {
            assert_eq!(topo.coord_of(*p).unwrap().along(1).unwrap(), base);
        }

        let peers1 = topo.peers_along(NpuId(5), 1).unwrap();
        assert_eq!(peers1.len(), 8);
        assert!(peers1.contains(&NpuId(5)));
    }

    #[test]
    fn subtopology_extraction() {
        let topo = topo_4x8();
        let sub = topo.subtopology(&[1], "outer-only").unwrap();
        assert_eq!(sub.num_dims(), 1);
        assert_eq!(sub.num_npus(), 8);
        assert_eq!(sub.name(), "outer-only");
        assert!(topo.subtopology(&[], "bad").is_err());
        assert!(topo.subtopology(&[0, 0], "bad").is_err());
        assert!(topo.subtopology(&[3], "bad").is_err());
    }

    #[test]
    fn split_prefix_covering_group() {
        let topo = NetworkTopology::builder("16x8x8")
            .dimension(DimensionSpec::new(TopologyKind::Switch, 16, 200.0, 4, 700.0).unwrap())
            .dimension(DimensionSpec::new(TopologyKind::Switch, 8, 200.0, 4, 700.0).unwrap())
            .dimension(DimensionSpec::new(TopologyKind::Switch, 8, 800.0, 1, 1700.0).unwrap())
            .build()
            .unwrap();
        let (mp, dp) = topo.split_prefix_covering(128).unwrap();
        assert_eq!(mp, vec![0, 1]);
        assert_eq!(dp, vec![2]);
        let (mp, dp) = topo.split_prefix_covering(1).unwrap();
        assert!(mp.is_empty());
        assert_eq!(dp, vec![0, 1, 2]);
        assert!(topo.split_prefix_covering(24).is_err());
        assert!(topo.split_prefix_covering(2048).is_err());
    }

    #[test]
    fn split_for_group_with_whole_dimensions() {
        let topo = NetworkTopology::builder("16x8x8")
            .dimension(DimensionSpec::new(TopologyKind::Switch, 16, 200.0, 4, 700.0).unwrap())
            .dimension(DimensionSpec::new(TopologyKind::Switch, 8, 200.0, 4, 700.0).unwrap())
            .dimension(DimensionSpec::new(TopologyKind::Switch, 8, 800.0, 1, 1700.0).unwrap())
            .build()
            .unwrap();
        let (group, rest) = topo.split_for_group(128, "mp", "dp").unwrap();
        assert_eq!(group.num_npus(), 128);
        assert_eq!(group.dim_sizes(), vec![16, 8]);
        assert_eq!(rest.num_npus(), 8);
        assert_eq!(rest.dim_sizes(), vec![8]);
        assert_eq!(rest.dim_bandwidth(0).unwrap().as_gbps(), 800.0);
    }

    #[test]
    fn split_for_group_factors_a_dimension() {
        // A 16×64 machine with a 128-NPU group: dim 2 is factored into 8×8.
        let topo = NetworkTopology::builder("16x64")
            .dimension(DimensionSpec::new(TopologyKind::Switch, 16, 200.0, 6, 700.0).unwrap())
            .dimension(DimensionSpec::new(TopologyKind::Switch, 64, 800.0, 1, 1700.0).unwrap())
            .build()
            .unwrap();
        let (group, rest) = topo.split_for_group(128, "mp", "dp").unwrap();
        assert_eq!(group.dim_sizes(), vec![16, 8]);
        assert_eq!(rest.dim_sizes(), vec![8]);
        assert_eq!(group.dim_bandwidth(1).unwrap().as_gbps(), 800.0);
        assert_eq!(rest.dim_bandwidth(0).unwrap().as_gbps(), 800.0);
        assert_eq!(group.num_npus() * rest.num_npus(), topo.num_npus());
    }

    #[test]
    fn split_for_group_rejects_bad_sizes() {
        let topo = topo_4x8();
        assert!(topo.split_for_group(0, "a", "b").is_err());
        assert!(topo.split_for_group(1, "a", "b").is_err());
        assert!(topo.split_for_group(32, "a", "b").is_err());
        assert!(topo.split_for_group(3, "a", "b").is_err());
        let (group, rest) = topo.split_for_group(8, "a", "b").unwrap();
        assert_eq!(group.dim_sizes(), vec![4, 2]);
        assert_eq!(rest.dim_sizes(), vec![4]);
    }

    #[test]
    fn bandwidth_scaling() {
        let topo = topo_4x8();
        let scaled = topo.with_dim_bandwidth_scaled(1, 2.0).unwrap();
        assert_eq!(scaled.dim_bandwidth(1).unwrap().as_gbps(), 800.0);
        assert_eq!(scaled.dim_bandwidth(0).unwrap().as_gbps(), 2000.0);
        assert!(topo.with_dim_bandwidth_scaled(5, 2.0).is_err());
    }

    #[test]
    fn fingerprint_reflects_structure_not_name() {
        let topo = topo_4x8();
        // Deterministic across calls.
        assert_eq!(topo.fingerprint(), topo.fingerprint());
        // Renaming keeps the fingerprint: schedules only see the structure.
        assert_eq!(topo.renamed("other-name").fingerprint(), topo.fingerprint());
        // Any structural change moves it.
        let scaled = topo.with_dim_bandwidth_scaled(1, 2.0).unwrap();
        assert_ne!(scaled.fingerprint(), topo.fingerprint());
        let reordered = NetworkTopology::new(
            "reordered",
            vec![topo.dims()[1].clone(), topo.dims()[0].clone()],
        )
        .unwrap();
        assert_ne!(reordered.fingerprint(), topo.fingerprint());
    }

    #[test]
    fn renamed_preserves_structure() {
        let topo = topo_4x8();
        let renamed = topo.renamed("other");
        assert_eq!(renamed.name(), "other");
        assert_eq!(renamed.dims(), topo.dims());
    }
}
