//! # themis-net
//!
//! Multi-dimensional network topology substrate used by the Themis (ISCA 2022)
//! reproduction.
//!
//! Distributed-training platforms connect NPUs through a *hierarchy* of network
//! dimensions (package, node, pod, scale-out NIC, ...). Each dimension has its
//! own physical topology (ring, fully-connected, switch), its own per-NPU
//! aggregate bandwidth and its own step latency. This crate models that
//! abstraction (Fig. 1 of the paper) and provides the concrete platforms
//! evaluated in the paper (Table 2) as [`presets`].
//!
//! The central type is [`NetworkTopology`]: an ordered list of
//! [`DimensionSpec`]s together with NPU addressing helpers.
//!
//! ```
//! use themis_net::{NetworkTopology, DimensionSpec, TopologyKind};
//!
//! # fn main() -> Result<(), themis_net::NetError> {
//! let topo = NetworkTopology::builder("example-2d")
//!     .dimension(DimensionSpec::new(TopologyKind::Ring, 4, 100.0, 2, 20.0)?)
//!     .dimension(DimensionSpec::new(TopologyKind::Switch, 8, 400.0, 1, 700.0)?)
//!     .build()?;
//! assert_eq!(topo.num_npus(), 32);
//! assert_eq!(topo.num_dims(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

// Every crate's `serde` feature cascades down to this one, so this single
// guard turns the otherwise-confusing "cannot find crate `serde`" errors into
// an actionable message. The build environment is offline: the feature exists
// to keep the `cfg_attr(feature = "serde", ...)` attributes a known cfg, not
// to be enabled.
#[cfg(feature = "serde")]
compile_error!(
    "the workspace `serde` feature is a stub gate for the offline build: \
     vendor the `serde` crate (with the `derive` feature), add it to every \
     crate's [dependencies], and remove this guard before enabling it"
);

pub mod bandwidth;
pub mod dimension;
pub mod error;
pub mod presets;
pub mod provisioning;
pub mod topology;

pub use bandwidth::{Bandwidth, DataSize};
pub use dimension::{DimensionSpec, TopologyKind};
pub use error::NetError;
pub use presets::{current_generation_2d, next_generation_suite, preset_by_name, PresetTopology};
pub use provisioning::{classify_pair, classify_topology, ProvisioningClass, ProvisioningReport};
pub use topology::{NetworkTopology, NetworkTopologyBuilder, NpuCoord, NpuId};
