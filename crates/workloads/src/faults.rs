//! Fault-scenario generators: deterministic [`FaultPlan`] families for
//! robustness sweeps.
//!
//! The fault engine ([`themis_sim::faults`]) prices operations against
//! degraded cost tables from their activation instant onwards; this module
//! produces the *schedules* worth sweeping. Three families cover the
//! experiments in the fault suite:
//!
//! * [`asymmetric_degradation`] — one dimension degraded from t = 0, the
//!   rest healthy. The static-asymmetry case: how much of Themis's win over
//!   Baseline survives a persistently slow dimension?
//! * [`midstream_degradation_grid`] — a (dimension × factor × onset) grid of
//!   single degradation events landing mid-run, exercising the epoch
//!   boundary: operations issued before the onset complete at their original
//!   cost, later ones pay the degraded price.
//! * [`transient_flaps`] — a link that fails and recovers repeatedly
//!   (fail → recover → fail …), the worst case for schedulers that front-load
//!   a dimension.
//!
//! Every generator is a pure function of its arguments, so scenario lists
//! are bit-stable across runs and processes — a requirement for the
//! determinism gates in `bench-faults`.

use themis_sim::FaultPlan;

/// One named fault scenario: a stable label for reports and cache keys plus
/// the plan itself.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Deterministic scenario label (e.g. `deg-d0-x0.50`).
    pub name: String,
    /// The fault schedule to install on the platform under test.
    pub plan: FaultPlan,
}

impl FaultScenario {
    /// Creates a named scenario.
    pub fn new(name: impl Into<String>, plan: FaultPlan) -> Self {
        FaultScenario {
            name: name.into(),
            plan,
        }
    }
}

/// Asymmetric bandwidth sweep: for every dimension and every factor, one
/// scenario degrading only that dimension to `factor` from t = 0.
///
/// Factors outside `(0, 1]` would fail [`FaultPlan::validate`] at simulation
/// time; they are the caller's responsibility (the generator itself never
/// filters, so scenario counts stay predictable: `num_dims * factors.len()`).
pub fn asymmetric_degradation(num_dims: usize, factors: &[f64]) -> Vec<FaultScenario> {
    let mut scenarios = Vec::with_capacity(num_dims * factors.len());
    for dim in 0..num_dims {
        for &factor in factors {
            scenarios.push(FaultScenario::new(
                format!("deg-d{dim}-x{factor:.2}"),
                FaultPlan::new().degrade(0.0, dim, factor),
            ));
        }
    }
    scenarios
}

/// Mid-stream degradation grid: every (dimension, factor, onset) triple as
/// one scenario whose single degradation event activates at `onset_ns`.
///
/// Scenario count: `num_dims * factors.len() * onsets_ns.len()`.
pub fn midstream_degradation_grid(
    num_dims: usize,
    factors: &[f64],
    onsets_ns: &[f64],
) -> Vec<FaultScenario> {
    let mut scenarios = Vec::with_capacity(num_dims * factors.len() * onsets_ns.len());
    for dim in 0..num_dims {
        for &factor in factors {
            for &onset in onsets_ns {
                scenarios.push(FaultScenario::new(
                    format!("mid-d{dim}-x{factor:.2}-t{onset:.0}"),
                    FaultPlan::new().degrade(onset, dim, factor),
                ));
            }
        }
    }
    scenarios
}

/// Transient flap patterns: for every dimension, one scenario in which the
/// dimension fails at `onset_ns`, recovers `outage_ns` later, and repeats
/// the fail/recover pair every `period_ns`, `flaps` times in total.
///
/// During an outage the dimension stops *issuing* operations (in-flight ones
/// complete); after each recovery it is fully healthy again. `flaps == 0`
/// produces empty plans (healthy-fabric scenarios named `flap-d<k>-n0`).
pub fn transient_flaps(
    num_dims: usize,
    onset_ns: f64,
    outage_ns: f64,
    period_ns: f64,
    flaps: usize,
) -> Vec<FaultScenario> {
    let mut scenarios = Vec::with_capacity(num_dims);
    for dim in 0..num_dims {
        let mut plan = FaultPlan::new();
        for flap in 0..flaps {
            let start = onset_ns + period_ns * flap as f64;
            plan = plan.fail(start, dim).recover(start + outage_ns, dim);
        }
        scenarios.push(FaultScenario::new(format!("flap-d{dim}-n{flaps}"), plan));
    }
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_sim::{FaultEvent, FaultKind};

    #[test]
    fn asymmetric_sweep_covers_every_dim_factor_pair() {
        let scenarios = asymmetric_degradation(3, &[0.5, 0.25]);
        assert_eq!(scenarios.len(), 6);
        assert_eq!(scenarios[0].name, "deg-d0-x0.50");
        assert_eq!(
            scenarios[0].plan.events(),
            &[FaultEvent {
                at_ns: 0.0,
                dim: 0,
                kind: FaultKind::Degrade { factor: 0.5 },
            }]
        );
        assert_eq!(scenarios[5].name, "deg-d2-x0.25");
        // Every plan touches exactly one dimension.
        for scenario in &scenarios {
            assert_eq!(scenario.plan.len(), 1);
        }
    }

    #[test]
    fn midstream_grid_is_the_full_cartesian_product() {
        let scenarios = midstream_degradation_grid(2, &[0.5], &[1_000.0, 5_000.0]);
        assert_eq!(scenarios.len(), 4);
        assert_eq!(scenarios[1].name, "mid-d0-x0.50-t5000");
        assert_eq!(scenarios[1].plan.events()[0].at_ns, 5_000.0);
    }

    #[test]
    fn flap_patterns_alternate_fail_and_recover() {
        let scenarios = transient_flaps(1, 100.0, 50.0, 200.0, 2);
        assert_eq!(scenarios.len(), 1);
        let events = scenarios[0].plan.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.at_ns).collect::<Vec<_>>(),
            vec![100.0, 150.0, 300.0, 350.0]
        );
        assert!(matches!(events[0].kind, FaultKind::Fail));
        assert!(matches!(events[1].kind, FaultKind::Recover));
        // Zero flaps degenerate to a healthy-fabric plan.
        assert!(transient_flaps(1, 0.0, 1.0, 2.0, 0)[0].plan.is_empty());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            asymmetric_degradation(4, &[0.75, 0.5]),
            asymmetric_degradation(4, &[0.75, 0.5])
        );
        assert_eq!(
            transient_flaps(2, 10.0, 5.0, 20.0, 3),
            transient_flaps(2, 10.0, 5.0, 20.0, 3)
        );
    }
}
