//! The four evaluated workloads with the paper's default configurations.

use crate::models;
use crate::parallelism::ParallelismStrategy;
use crate::training::TrainingConfig;
use std::fmt;

/// One of the paper's evaluation workloads (Sec. 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Workload {
    /// ResNet-152, data-parallel, per-NPU mini-batch 32.
    ResNet152,
    /// GNMT, data-parallel, per-NPU mini-batch 128.
    Gnmt,
    /// DLRM, hybrid parallel, per-NPU mini-batch 512.
    Dlrm,
    /// Transformer-1T, model-parallel (128 NPUs) + ZeRO-2, per-NPU mini-batch 16.
    Transformer1T,
}

impl Workload {
    /// All workloads, in the paper's order.
    pub fn all() -> [Workload; 4] {
        [
            Workload::ResNet152,
            Workload::Gnmt,
            Workload::Dlrm,
            Workload::Transformer1T,
        ]
    }

    /// Display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::ResNet152 => "ResNet-152",
            Workload::Gnmt => "GNMT",
            Workload::Dlrm => "DLRM",
            Workload::Transformer1T => "Transformer-1T",
        }
    }

    /// The paper's per-NPU mini-batch size for this workload (Sec. 5.2).
    pub fn per_npu_minibatch(&self) -> usize {
        match self {
            Workload::ResNet152 => 32,
            Workload::Gnmt => 128,
            Workload::Dlrm => 512,
            Workload::Transformer1T => 16,
        }
    }

    /// The paper's parallelization strategy for this workload (Sec. 5.2).
    pub fn strategy(&self) -> ParallelismStrategy {
        match self {
            Workload::ResNet152 | Workload::Gnmt => ParallelismStrategy::DataParallel,
            Workload::Dlrm => ParallelismStrategy::DlrmHybrid,
            Workload::Transformer1T => ParallelismStrategy::ModelParallelZero2 {
                model_parallel_npus: 128,
            },
        }
    }

    /// Builds the workload's DNN model description.
    pub fn model(&self) -> crate::models::DnnModel {
        match self {
            Workload::ResNet152 => models::resnet152(),
            Workload::Gnmt => models::gnmt(),
            Workload::Dlrm => models::dlrm(),
            Workload::Transformer1T => models::transformer_1t(),
        }
    }

    /// The full training configuration with the paper's defaults.
    pub fn config(&self) -> TrainingConfig {
        TrainingConfig::new(self.model(), self.strategy(), self.per_npu_minibatch())
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_minibatch_sizes() {
        assert_eq!(Workload::ResNet152.per_npu_minibatch(), 32);
        assert_eq!(Workload::Gnmt.per_npu_minibatch(), 128);
        assert_eq!(Workload::Dlrm.per_npu_minibatch(), 512);
        assert_eq!(Workload::Transformer1T.per_npu_minibatch(), 16);
    }

    #[test]
    fn strategies_match_sec52() {
        assert_eq!(
            Workload::ResNet152.strategy(),
            ParallelismStrategy::DataParallel
        );
        assert_eq!(Workload::Gnmt.strategy(), ParallelismStrategy::DataParallel);
        assert_eq!(Workload::Dlrm.strategy(), ParallelismStrategy::DlrmHybrid);
        assert_eq!(
            Workload::Transformer1T.strategy(),
            ParallelismStrategy::ModelParallelZero2 {
                model_parallel_npus: 128
            }
        );
    }

    #[test]
    fn configs_use_fp16_gradients_and_64_chunks() {
        for workload in Workload::all() {
            let config = workload.config();
            assert_eq!(config.gradient_bytes_per_param, 2.0);
            assert_eq!(config.chunks_per_collective, 64);
            assert_eq!(config.per_npu_minibatch, workload.per_npu_minibatch());
            assert_eq!(config.model.name(), workload.name());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Workload::ResNet152.to_string(), "ResNet-152");
        assert_eq!(Workload::Transformer1T.to_string(), "Transformer-1T");
        assert_eq!(Workload::all().len(), 4);
    }
}
