//! Deriving a collective *stream* from a workload's layer graph.
//!
//! A training iteration does not issue its collectives all at once: during
//! back-propagation each layer's gradients become ready as soon as that
//! layer's backward compute finishes, and frameworks launch the corresponding
//! synchronisation collective immediately (wait-free back-propagation). This
//! module walks a [`TrainingConfig`]'s layer graph in back-propagation order
//! and produces the resulting queue of collectives — per-layer gradient
//! All-Reduces for data-parallel workloads, plus the gradient-side All-To-All
//! for DLRM's model-parallel embedding tables — with issue times taken from
//! the roofline compute model.
//!
//! The stream's clock starts at the beginning of back-propagation; feed it to
//! the streaming queue engine (`themis-sim`'s `stream` module) to measure how
//! much of the communication overlaps in flight, or to the sequential
//! timeline policy for the back-to-back reference.

use crate::error::WorkloadError;
use crate::layer::LayerKind;
use crate::parallelism::ParallelismStrategy;
use crate::training::TrainingConfig;
use themis_collectives::CollectiveKind;
use themis_core::CollectiveRequest;
use themis_net::DataSize;

/// One collective of a derived training stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedCollective {
    /// Label naming the originating layer (e.g. `"stage3-x36 grad All-Reduce"`).
    pub label: String,
    /// Issue time relative to the start of back-propagation, ns.
    pub issue_ns: f64,
    /// The collective pattern.
    pub kind: CollectiveKind,
    /// Per-NPU payload, bytes.
    pub bytes: f64,
}

impl StreamedCollective {
    /// The payload as a [`DataSize`] — the single place the fractional byte
    /// count is rounded, so every consumer issues identical requests.
    pub fn data_size(&self) -> DataSize {
        DataSize::from_bytes(self.bytes.round() as u64)
    }

    /// The [`CollectiveRequest`] this streamed collective issues.
    pub fn request(&self) -> CollectiveRequest {
        CollectiveRequest::new(self.kind, self.data_size())
    }
}

/// Walks `config`'s layer graph in back-propagation order and returns the
/// collective stream of one training iteration.
///
/// * **Data-parallel** strategies emit one gradient All-Reduce per layer
///   (skipping parameter-free layers), issued when the layer's backward
///   compute completes.
/// * **DLRM hybrid** additionally emits the gradient-side All-To-All of the
///   model-parallel embedding tables when back-propagation reaches them, and
///   skips the embedding parameters in the dense gradient All-Reduces.
/// * **Model-parallel (Transformer-1T ZeRO-2)** cannot be expressed as a
///   single-network stream (its collectives run on disjoint sub-topologies),
///   so it is rejected with [`WorkloadError::InvalidParameter`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParameter`] for invalid configurations and
/// for the model-parallel strategy.
pub fn collective_stream(
    config: &TrainingConfig,
) -> Result<Vec<StreamedCollective>, WorkloadError> {
    config.validate()?;
    let skip_embedding_gradients = match config.strategy {
        ParallelismStrategy::DataParallel => false,
        ParallelismStrategy::DlrmHybrid => true,
        ParallelismStrategy::ModelParallelZero2 { .. } => {
            return Err(WorkloadError::InvalidParameter {
                reason: "the model-parallel ZeRO-2 strategy spreads its collectives over \
                         disjoint sub-topologies and cannot be expressed as a single-network \
                         stream; use TrainingSimulator::simulate_iteration instead"
                    .to_string(),
            });
        }
    };

    let batch = config.per_npu_minibatch as f64;
    let mut stream = Vec::new();
    let mut now_ns = 0.0f64;
    // Back-propagation visits layers in reverse graph order; each layer's
    // collective is issued the moment its backward compute completes.
    for layer in config.model.layers().iter().rev() {
        now_ns += config
            .compute
            .time_for_flops_ns(layer.backward_flops_per_sample() * batch);
        if layer.kind() == LayerKind::Embedding && skip_embedding_gradients {
            // Model-parallel embeddings exchange pooled gradients through the
            // mirror All-To-All instead of an All-Reduce.
            let a2a_bytes = layer.activation_bytes_per_sample() * batch;
            if a2a_bytes >= 1.0 {
                stream.push(StreamedCollective {
                    label: format!("{} grad All-To-All", layer.name()),
                    issue_ns: now_ns,
                    kind: CollectiveKind::AllToAll,
                    bytes: a2a_bytes,
                });
            }
            continue;
        }
        let gradient_bytes = layer.parameters() as f64 * config.gradient_bytes_per_param;
        if gradient_bytes >= 1.0 {
            stream.push(StreamedCollective {
                label: format!("{} grad All-Reduce", layer.name()),
                issue_ns: now_ns,
                kind: CollectiveKind::AllReduce,
                bytes: gradient_bytes,
            });
        }
    }
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn data_parallel_streams_issue_in_backprop_order() {
        let config = Workload::ResNet152.config();
        let stream = collective_stream(&config).unwrap();
        assert!(!stream.is_empty());
        // Issue times are non-decreasing and strictly positive (every layer
        // has backward compute).
        assert!(stream.windows(2).all(|w| w[0].issue_ns <= w[1].issue_ns));
        assert!(stream[0].issue_ns > 0.0);
        assert!(stream
            .iter()
            .all(|c| c.kind == CollectiveKind::AllReduce && c.bytes >= 1.0));
        // The streamed gradient bytes cover exactly the model's parameters.
        let total: f64 = stream.iter().map(|c| c.bytes).sum();
        let expected = config.model.total_parameters() as f64 * config.gradient_bytes_per_param;
        assert!((total - expected).abs() < 1.0);
        // Back-propagation starts at the classifier, so the first collective
        // belongs to the model's last layer group.
        assert!(stream[0].label.contains("classifier"));
    }

    #[test]
    fn dlrm_stream_carries_the_all_to_all_and_skips_embedding_gradients() {
        let config = Workload::Dlrm.config();
        let stream = collective_stream(&config).unwrap();
        let a2a: Vec<_> = stream
            .iter()
            .filter(|c| c.kind == CollectiveKind::AllToAll)
            .collect();
        assert_eq!(a2a.len(), 1);
        let ar_bytes: f64 = stream
            .iter()
            .filter(|c| c.kind == CollectiveKind::AllReduce)
            .map(|c| c.bytes)
            .sum();
        let dense = config.model.parameters_excluding_kind(LayerKind::Embedding) as f64
            * config.gradient_bytes_per_param;
        assert!((ar_bytes - dense).abs() < 1.0);
    }

    #[test]
    fn model_parallel_strategy_is_rejected() {
        let config = Workload::Transformer1T.config();
        let err = collective_stream(&config).unwrap_err();
        assert!(matches!(err, WorkloadError::InvalidParameter { .. }));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = Workload::Gnmt.config();
        config.per_npu_minibatch = 0;
        assert!(collective_stream(&config).is_err());
    }
}
