//! # themis-workloads
//!
//! DNN workload models, parallelization strategies and a training-iteration
//! simulator for the Themis (ISCA 2022) reproduction.
//!
//! The paper evaluates end-to-end training iterations of four workloads —
//! ResNet-152, GNMT, DLRM and Transformer-1T — on 1024-NPU platforms, with
//! compute modelled as roofline FP16 performance and communication simulated
//! by ASTRA-sim. This crate reproduces that workload layer:
//!
//! * [`models`] — layer-level descriptions (parameters, FLOPs, activation
//!   sizes) of the four DNNs, derived from their public architectures.
//! * [`compute::ComputeModel`] — the roofline FP16 compute-time model.
//! * [`parallelism::ParallelismStrategy`] — data-parallel, DLRM hybrid
//!   (data-parallel MLPs + model-parallel embeddings with overlapped
//!   All-To-All) and Transformer-1T model-parallel + ZeRO-2 data-parallel.
//! * [`training::TrainingSimulator`] — produces the Fig. 12 breakdown
//!   (forward compute, backward compute, exposed MP communication, exposed DP
//!   communication) for a given topology and scheduling policy.
//! * [`stream`] — derives the *collective stream* of one iteration from the
//!   layer graph (per-layer gradient All-Reduces issued as back-propagation
//!   completes each layer, DLRM's gradient-side All-To-All), feeding the
//!   streaming queue engine via
//!   [`training::TrainingSimulator::simulate_iteration_streamed`].
//! * [`faults`] — deterministic fault-scenario generators (asymmetric
//!   bandwidth sweeps, mid-stream degradation grids, transient flap
//!   patterns) feeding the robustness experiments.
//!
//! ```
//! use themis_net::presets::PresetTopology;
//! use themis_workloads::{CommunicationPolicy, TrainingSimulator, Workload};
//!
//! # fn main() -> Result<(), themis_workloads::WorkloadError> {
//! let topo = PresetTopology::SwSwSw3dHomo.build();
//! let sim = TrainingSimulator::new(Workload::ResNet152.config());
//! let baseline = sim.simulate_iteration(&topo, CommunicationPolicy::Baseline)?;
//! let themis = sim.simulate_iteration(&topo, CommunicationPolicy::ThemisScf)?;
//! assert!(themis.total_ns() <= baseline.total_ns());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compute;
pub mod error;
pub mod faults;
pub mod layer;
pub mod models;
pub mod parallelism;
pub mod stream;
pub mod training;
pub mod workload;

pub use compute::ComputeModel;
pub use error::WorkloadError;
pub use faults::{
    asymmetric_degradation, midstream_degradation_grid, transient_flaps, FaultScenario,
};
pub use layer::{Layer, LayerKind};
pub use models::DnnModel;
pub use parallelism::ParallelismStrategy;
pub use stream::{collective_stream, StreamedCollective};
pub use training::{
    CommunicationPolicy, IterationBreakdown, StreamedIteration, TrainingConfig, TrainingSimulator,
};
pub use workload::Workload;
