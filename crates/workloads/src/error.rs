//! Error type for workload modelling and training simulation.

use std::error::Error;
use std::fmt;
use themis_net::NetError;
use themis_sim::SimError;

/// Errors produced while building workload models or simulating training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A model, layer or compute parameter was invalid.
    InvalidParameter {
        /// Human-readable description of the invalid parameter.
        reason: String,
    },
    /// The parallelization strategy cannot be mapped onto the topology
    /// (e.g. the model-parallel group does not align with whole dimensions).
    IncompatibleTopology {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// An underlying topology error.
    Net(NetError),
    /// An underlying simulation error.
    Sim(SimError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidParameter { reason } => {
                write!(f, "invalid workload parameter: {reason}")
            }
            WorkloadError::IncompatibleTopology { reason } => {
                write!(
                    f,
                    "parallelization strategy does not fit the topology: {reason}"
                )
            }
            WorkloadError::Net(err) => write!(f, "topology error: {err}"),
            WorkloadError::Sim(err) => write!(f, "simulation error: {err}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Net(err) => Some(err),
            WorkloadError::Sim(err) => Some(err),
            _ => None,
        }
    }
}

impl From<NetError> for WorkloadError {
    fn from(err: NetError) -> Self {
        WorkloadError::Net(err)
    }
}

impl From<SimError> for WorkloadError {
    fn from(err: SimError) -> Self {
        WorkloadError::Sim(err)
    }
}

impl From<themis_core::ScheduleError> for WorkloadError {
    fn from(err: themis_core::ScheduleError) -> Self {
        WorkloadError::Sim(SimError::Schedule(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let cases = vec![
            WorkloadError::InvalidParameter {
                reason: "zero batch".to_string(),
            },
            WorkloadError::IncompatibleTopology {
                reason: "mp group".to_string(),
            },
            WorkloadError::Net(NetError::EmptyTopology),
            WorkloadError::Sim(SimError::InvalidOptions {
                reason: "x".to_string(),
            }),
        ];
        for case in cases {
            assert!(!case.to_string().is_empty());
        }
    }

    #[test]
    fn sources_are_preserved() {
        assert!(WorkloadError::from(NetError::EmptyTopology)
            .source()
            .is_some());
        assert!(WorkloadError::from(SimError::InvalidOptions {
            reason: String::new()
        })
        .source()
        .is_some());
        assert!(WorkloadError::InvalidParameter {
            reason: String::new()
        }
        .source()
        .is_none());
    }
}
