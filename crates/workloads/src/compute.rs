//! Roofline FP16 compute-time model.
//!
//! The paper assumes "roofline FP16 performance from the total FLOPS available
//! on current state-of-the-art accelerators" (Sec. 5.1), i.e. compute time is
//! simply FLOPs divided by the accelerator's peak FP16 throughput scaled by an
//! achievable-efficiency factor.

use crate::error::WorkloadError;

/// Roofline FP16 compute model for one NPU.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComputeModel {
    peak_tflops_fp16: f64,
    efficiency: f64,
}

impl ComputeModel {
    /// Peak FP16 throughput of an NVIDIA A100 (the paper's reference
    /// accelerator), in TFLOP/s.
    pub const A100_PEAK_TFLOPS_FP16: f64 = 312.0;

    /// Creates a compute model.
    ///
    /// * `peak_tflops_fp16` — peak dense FP16 throughput of one NPU, TFLOP/s.
    /// * `efficiency` — achievable fraction of peak in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for non-positive or
    /// non-finite values, or an efficiency above 1.
    pub fn new(peak_tflops_fp16: f64, efficiency: f64) -> Result<Self, WorkloadError> {
        if !peak_tflops_fp16.is_finite() || peak_tflops_fp16 <= 0.0 {
            return Err(WorkloadError::InvalidParameter {
                reason: format!("peak throughput must be positive, got {peak_tflops_fp16} TFLOPS"),
            });
        }
        if !efficiency.is_finite() || efficiency <= 0.0 || efficiency > 1.0 {
            return Err(WorkloadError::InvalidParameter {
                reason: format!("efficiency must be in (0, 1], got {efficiency}"),
            });
        }
        Ok(ComputeModel {
            peak_tflops_fp16,
            efficiency,
        })
    }

    /// The A100-like default used by the paper's evaluation: pure roofline at
    /// the accelerator's 312 TFLOPS FP16 peak (Sec. 5.1 assumes "roofline FP16
    /// performance from the total FLOPS available").
    pub fn a100_like() -> Self {
        ComputeModel {
            peak_tflops_fp16: Self::A100_PEAK_TFLOPS_FP16,
            efficiency: 1.0,
        }
    }

    /// Peak FP16 throughput, TFLOP/s.
    pub fn peak_tflops_fp16(&self) -> f64 {
        self.peak_tflops_fp16
    }

    /// Achievable fraction of peak.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Sustained throughput in FLOP per nanosecond.
    pub fn sustained_flops_per_ns(&self) -> f64 {
        // 1 TFLOP/s = 10^12 FLOP/s = 10^3 FLOP/ns.
        self.peak_tflops_fp16 * self.efficiency * 1e3
    }

    /// Time to execute `flops` floating-point operations on one NPU, ns.
    pub fn time_for_flops_ns(&self, flops: f64) -> f64 {
        if flops <= 0.0 {
            return 0.0;
        }
        flops / self.sustained_flops_per_ns()
    }
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel::a100_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_defaults() {
        let model = ComputeModel::default();
        assert_eq!(model.peak_tflops_fp16(), 312.0);
        assert_eq!(model.efficiency(), 1.0);
        assert_eq!(model.sustained_flops_per_ns(), 312_000.0);
    }

    #[test]
    fn time_scales_linearly_with_flops() {
        let model = ComputeModel::new(100.0, 1.0).unwrap();
        // 100 TFLOPS = 1e5 FLOP/ns → 1e8 FLOP takes 1000 ns.
        assert!((model.time_for_flops_ns(1e8) - 1000.0).abs() < 1e-9);
        assert!((model.time_for_flops_ns(2e8) - 2000.0).abs() < 1e-9);
        assert_eq!(model.time_for_flops_ns(0.0), 0.0);
        assert_eq!(model.time_for_flops_ns(-5.0), 0.0);
    }

    #[test]
    fn lower_efficiency_means_longer_compute() {
        let full = ComputeModel::new(312.0, 1.0).unwrap();
        let half = ComputeModel::new(312.0, 0.5).unwrap();
        let flops = 1e12;
        assert!(half.time_for_flops_ns(flops) > full.time_for_flops_ns(flops));
        assert!((half.time_for_flops_ns(flops) / full.time_for_flops_ns(flops) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(ComputeModel::new(0.0, 0.5).is_err());
        assert!(ComputeModel::new(-1.0, 0.5).is_err());
        assert!(ComputeModel::new(f64::NAN, 0.5).is_err());
        assert!(ComputeModel::new(312.0, 0.0).is_err());
        assert!(ComputeModel::new(312.0, 1.5).is_err());
        assert!(ComputeModel::new(312.0, f64::INFINITY).is_err());
    }
}
