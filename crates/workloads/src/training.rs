//! Training-iteration simulation (Fig. 12).
//!
//! One training iteration is a forward pass followed by back-propagation. The
//! simulator decomposes its latency into four components — forward compute,
//! backward compute, exposed model-parallel communication and exposed
//! data-parallel communication — exactly the bars of Fig. 12:
//!
//! * compute times come from the roofline [`ComputeModel`];
//! * communication times come from scheduling the workload's collectives with
//!   the selected policy (baseline / Themis / ideal) and executing them on the
//!   chunk-pipeline simulator;
//! * DLRM's All-To-All overlaps with the bottom-MLP compute and only its
//!   non-overlapped remainder is exposed (Sec. 5.2 / Sec. 6.2);
//! * Transformer-1T's data-parallel gradient All-Reduce runs only on the
//!   network dimensions outside the 128-NPU model-parallel group.

use crate::compute::ComputeModel;
use crate::error::WorkloadError;
use crate::layer::LayerKind;
use crate::models::DnnModel;
use crate::parallelism::ParallelismStrategy;
use crate::stream::collective_stream;
use std::fmt;
use themis_collectives::CollectiveKind;
use themis_core::{CollectiveRequest, IdealEstimator, SchedulerKind, SimPlanCache};
use themis_net::{DataSize, NetworkTopology};
use themis_sim::stream::{StreamEntry, StreamSimulator};
use themis_sim::{CollectiveExecutor, SimOptions, SimWorkspace, StreamReport};

/// The shared-cache context threaded through one training-iteration
/// simulation: an optional warm [`SimPlanCache`] plus the reusable simulation
/// workspace.
struct PlanCtx<'a> {
    plan: Option<&'a SimPlanCache>,
    workspace: &'a mut SimWorkspace,
}

/// The communication scheduling policy used for a training run
/// (the rows of Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CommunicationPolicy {
    /// Multi-rail hierarchical baseline scheduling (Sec. 2.3).
    Baseline,
    /// Themis with FIFO intra-dimension scheduling.
    ThemisFifo,
    /// Themis with Smallest-Chunk-First intra-dimension scheduling.
    ThemisScf,
    /// The 100 % BW utilisation bound of Table 3.
    Ideal,
}

impl CommunicationPolicy {
    /// The policies shown in Fig. 12, in row order.
    pub fn fig12_rows() -> [CommunicationPolicy; 3] {
        [
            CommunicationPolicy::Baseline,
            CommunicationPolicy::ThemisScf,
            CommunicationPolicy::Ideal,
        ]
    }

    /// All policies.
    pub fn all() -> [CommunicationPolicy; 4] {
        [
            CommunicationPolicy::Baseline,
            CommunicationPolicy::ThemisFifo,
            CommunicationPolicy::ThemisScf,
            CommunicationPolicy::Ideal,
        ]
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            CommunicationPolicy::Baseline => "Baseline",
            CommunicationPolicy::ThemisFifo => "Themis+FIFO",
            CommunicationPolicy::ThemisScf => "Themis+SCF",
            CommunicationPolicy::Ideal => "Ideal",
        }
    }
}

impl fmt::Display for CommunicationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// The DNN being trained.
    pub model: DnnModel,
    /// How the model is partitioned across the machine.
    pub strategy: ParallelismStrategy,
    /// Per-NPU compute model.
    pub compute: ComputeModel,
    /// Per-NPU mini-batch size (Sec. 5.2: 32 / 128 / 512 / 16 for ResNet-152,
    /// GNMT, DLRM and Transformer-1T respectively).
    pub per_npu_minibatch: usize,
    /// Bytes per gradient element (2 for FP16, the paper's setting).
    pub gradient_bytes_per_param: f64,
    /// Chunks per collective used by the schedulers (paper default: 64).
    pub chunks_per_collective: usize,
}

impl TrainingConfig {
    /// Creates a configuration with the paper's defaults for precision (FP16)
    /// and chunk granularity (64), an A100-like compute model, and the given
    /// model / strategy / batch size.
    pub fn new(model: DnnModel, strategy: ParallelismStrategy, per_npu_minibatch: usize) -> Self {
        TrainingConfig {
            model,
            strategy,
            compute: ComputeModel::a100_like(),
            per_npu_minibatch,
            gradient_bytes_per_param: 2.0,
            chunks_per_collective: 64,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), WorkloadError> {
        if self.per_npu_minibatch == 0 {
            return Err(WorkloadError::InvalidParameter {
                reason: "per-NPU mini-batch must be at least 1".to_string(),
            });
        }
        if !self.gradient_bytes_per_param.is_finite() || self.gradient_bytes_per_param <= 0.0 {
            return Err(WorkloadError::InvalidParameter {
                reason: format!(
                    "gradient precision must be positive, got {} bytes/param",
                    self.gradient_bytes_per_param
                ),
            });
        }
        if self.chunks_per_collective == 0 {
            return Err(WorkloadError::InvalidParameter {
                reason: "chunks per collective must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// The latency breakdown of one training iteration (the bars of Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IterationBreakdown {
    /// Forward-pass compute time, ns.
    pub forward_compute_ns: f64,
    /// Back-propagation compute time, ns.
    pub backward_compute_ns: f64,
    /// Exposed model-parallel communication time, ns.
    pub exposed_mp_comm_ns: f64,
    /// Exposed data-parallel communication time, ns.
    pub exposed_dp_comm_ns: f64,
    /// Average weighted network BW utilisation achieved during the exposed
    /// collectives (the paper's Sec. 3 metric), weighted by collective
    /// duration. `1.0` for the Ideal policy and when there is no exposed
    /// communication.
    pub comm_utilization: f64,
}

impl IterationBreakdown {
    /// Total iteration latency, ns.
    pub fn total_ns(&self) -> f64 {
        self.forward_compute_ns
            + self.backward_compute_ns
            + self.exposed_mp_comm_ns
            + self.exposed_dp_comm_ns
    }

    /// Total exposed communication (MP + DP), ns.
    pub fn exposed_comm_ns(&self) -> f64 {
        self.exposed_mp_comm_ns + self.exposed_dp_comm_ns
    }

    /// Total compute (forward + backward), ns.
    pub fn compute_ns(&self) -> f64 {
        self.forward_compute_ns + self.backward_compute_ns
    }

    /// Fraction of the iteration spent in exposed communication.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total <= 0.0 {
            0.0
        } else {
            self.exposed_comm_ns() / total
        }
    }

    /// Speedup of this breakdown relative to `other` (other total / this total).
    pub fn speedup_over(&self, other: &IterationBreakdown) -> f64 {
        if self.total_ns() <= 0.0 {
            return f64::INFINITY;
        }
        other.total_ns() / self.total_ns()
    }
}

/// The outcome of a streamed training iteration
/// ([`TrainingSimulator::simulate_iteration_streamed`]): the compute times and
/// the full [`StreamReport`] of the gradient-collective queue.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedIteration {
    /// Forward-pass compute time, ns.
    pub forward_compute_ns: f64,
    /// Back-propagation compute time, ns.
    pub backward_compute_ns: f64,
    /// Communication that drained after the backward compute finished
    /// (`max(0, stream finish − backward compute)`), ns.
    pub exposed_comm_ns: f64,
    /// The simulated collective stream (clock zero = back-propagation start).
    pub stream: StreamReport,
}

impl StreamedIteration {
    /// Total iteration latency: compute plus the exposed tail of the
    /// communication stream, ns.
    pub fn total_ns(&self) -> f64 {
        self.forward_compute_ns + self.backward_compute_ns + self.exposed_comm_ns
    }

    /// Time during which two or more collectives of the stream were in flight
    /// together, ns.
    pub fn overlap_ns(&self) -> f64 {
        self.stream.overlap_ns
    }

    /// Makespan of the communication stream (first issue to last completion),
    /// ns.
    pub fn comm_makespan_ns(&self) -> f64 {
        self.stream.makespan_ns()
    }

    /// Speedup of this iteration relative to `other` (other total / this
    /// total).
    pub fn speedup_over(&self, other: &StreamedIteration) -> f64 {
        if self.total_ns() <= 0.0 {
            return f64::INFINITY;
        }
        other.total_ns() / self.total_ns()
    }
}

/// Simulates training iterations of a configured workload.
#[derive(Debug, Clone)]
pub struct TrainingSimulator {
    config: TrainingConfig,
    sim_options: SimOptions,
}

impl TrainingSimulator {
    /// Creates a simulator for `config` with default simulation options.
    pub fn new(config: TrainingConfig) -> Self {
        TrainingSimulator {
            config,
            sim_options: SimOptions::default(),
        }
    }

    /// Replaces the chunk-pipeline simulation options.
    #[must_use]
    pub fn with_sim_options(mut self, options: SimOptions) -> Self {
        self.sim_options = options;
        self
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Communication time and achieved weighted BW utilisation of one
    /// collective under `policy` on `topo`.
    fn comm_time_ns(
        &self,
        topo: &NetworkTopology,
        kind: CollectiveKind,
        bytes: f64,
        policy: CommunicationPolicy,
        ctx: &mut PlanCtx<'_>,
    ) -> Result<(f64, f64), WorkloadError> {
        if bytes < 1.0 {
            return Ok((0.0, 1.0));
        }
        let request = CollectiveRequest::new(kind, DataSize::from_bytes(bytes.round() as u64));
        match policy {
            CommunicationPolicy::Ideal => Ok((
                IdealEstimator::new().communication_time_ns(&request, topo)?,
                1.0,
            )),
            CommunicationPolicy::Baseline => {
                self.run_scheduler(topo, &request, SchedulerKind::Baseline, ctx)
            }
            CommunicationPolicy::ThemisFifo => {
                self.run_scheduler(topo, &request, SchedulerKind::ThemisFifo, ctx)
            }
            CommunicationPolicy::ThemisScf => {
                self.run_scheduler(topo, &request, SchedulerKind::ThemisScf, ctx)
            }
        }
    }

    fn run_scheduler(
        &self,
        topo: &NetworkTopology,
        request: &CollectiveRequest,
        kind: SchedulerKind,
        ctx: &mut PlanCtx<'_>,
    ) -> Result<(f64, f64), WorkloadError> {
        let executor = CollectiveExecutor::new(topo).with_options(self.sim_options.clone());
        let chunks = self.config.chunks_per_collective;
        let report = match ctx.plan {
            // Warm-cache path: schedule and cost table served from the shared
            // plan, event-loop state from the reusable workspace.
            // Bit-identical to the uncached run below.
            Some(plan) => executor.run_kind_planned(kind, chunks, request, plan, ctx.workspace)?,
            None => executor.run_kind(kind, chunks, request)?,
        };
        Ok((report.total_time_ns, report.average_bw_utilization()))
    }

    /// Simulates one training iteration on `topo` with the iteration's
    /// collectives issued as a *stream* during back-propagation (wait-free
    /// back-propagation): each layer's collective enters the network queue the
    /// moment its backward compute completes, and queued collectives overlap
    /// in flight according to
    /// [`SimOptions::cross_collective_overlap`] — disable the flag for the
    /// sequential-timeline reference.
    ///
    /// The stream clock starts at the beginning of back-propagation, so the
    /// exposed communication is the part of the stream that drains after the
    /// backward compute finishes.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations, for the model-parallel
    /// strategy (see [`collective_stream`]) and for scheduling/simulation
    /// failures.
    pub fn simulate_iteration_streamed(
        &self,
        topo: &NetworkTopology,
        scheduler: SchedulerKind,
    ) -> Result<StreamedIteration, WorkloadError> {
        let batch = self.config.per_npu_minibatch as f64;
        let model = &self.config.model;
        let forward_compute_ns = self
            .config
            .compute
            .time_for_flops_ns(model.forward_flops_per_sample() * batch);
        let backward_compute_ns = self
            .config
            .compute
            .time_for_flops_ns(model.backward_flops_per_sample() * batch);

        let entries: Vec<StreamEntry> = collective_stream(&self.config)?
            .into_iter()
            .map(|c| {
                let request = c.request();
                StreamEntry::new(c.label, c.issue_ns, request)
            })
            .collect();
        let mut boxed = scheduler.build(self.config.chunks_per_collective);
        let stream =
            StreamSimulator::new(topo, self.sim_options.clone()).run(boxed.as_mut(), &entries)?;
        let comm_finish_ns = stream.finish_ns;
        Ok(StreamedIteration {
            forward_compute_ns,
            backward_compute_ns,
            exposed_comm_ns: (comm_finish_ns - backward_compute_ns).max(0.0),
            stream,
        })
    }

    /// Simulates one training iteration on `topo` under `policy` and returns
    /// the Fig. 12 latency breakdown.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations or when the parallelization
    /// strategy cannot be mapped onto `topo`.
    pub fn simulate_iteration(
        &self,
        topo: &NetworkTopology,
        policy: CommunicationPolicy,
    ) -> Result<IterationBreakdown, WorkloadError> {
        let mut workspace = SimWorkspace::new();
        self.simulate_iteration_ctx(
            topo,
            policy,
            &mut PlanCtx {
                plan: None,
                workspace: &mut workspace,
            },
        )
    }

    /// Like [`TrainingSimulator::simulate_iteration`], but scheduling every
    /// collective of the iteration through a shared [`SimPlanCache`] and
    /// running the simulations on the caller's reusable [`SimWorkspace`].
    /// Training sweeps that revisit the same (topology, collective, policy)
    /// cells — e.g. the Fig. 4 / Fig. 12 figure suites — schedule and cost
    /// each distinct collective once across the whole sweep. Results are
    /// bit-identical to the uncached path.
    ///
    /// # Errors
    ///
    /// Same contract as [`TrainingSimulator::simulate_iteration`].
    pub fn simulate_iteration_planned(
        &self,
        topo: &NetworkTopology,
        policy: CommunicationPolicy,
        plan: &SimPlanCache,
        workspace: &mut SimWorkspace,
    ) -> Result<IterationBreakdown, WorkloadError> {
        self.simulate_iteration_ctx(
            topo,
            policy,
            &mut PlanCtx {
                plan: Some(plan),
                workspace,
            },
        )
    }

    fn simulate_iteration_ctx(
        &self,
        topo: &NetworkTopology,
        policy: CommunicationPolicy,
        ctx: &mut PlanCtx<'_>,
    ) -> Result<IterationBreakdown, WorkloadError> {
        self.config.validate()?;
        match self.config.strategy {
            ParallelismStrategy::DataParallel => self.simulate_data_parallel(topo, policy, ctx),
            ParallelismStrategy::DlrmHybrid => self.simulate_dlrm_hybrid(topo, policy, ctx),
            ParallelismStrategy::ModelParallelZero2 {
                model_parallel_npus,
            } => self.simulate_model_parallel_zero2(topo, policy, model_parallel_npus, ctx),
        }
    }

    fn simulate_data_parallel(
        &self,
        topo: &NetworkTopology,
        policy: CommunicationPolicy,
        ctx: &mut PlanCtx<'_>,
    ) -> Result<IterationBreakdown, WorkloadError> {
        let batch = self.config.per_npu_minibatch as f64;
        let model = &self.config.model;
        let forward_compute_ns = self
            .config
            .compute
            .time_for_flops_ns(model.forward_flops_per_sample() * batch);
        let backward_compute_ns = self
            .config
            .compute
            .time_for_flops_ns(model.backward_flops_per_sample() * batch);
        // Gradient All-Reduce over the whole machine, exposed at the end of
        // back-propagation.
        let gradient_bytes = model.total_parameters() as f64 * self.config.gradient_bytes_per_param;
        let (exposed_dp_comm_ns, comm_utilization) =
            self.comm_time_ns(topo, CollectiveKind::AllReduce, gradient_bytes, policy, ctx)?;
        Ok(IterationBreakdown {
            forward_compute_ns,
            backward_compute_ns,
            exposed_mp_comm_ns: 0.0,
            exposed_dp_comm_ns,
            comm_utilization,
        })
    }

    fn simulate_dlrm_hybrid(
        &self,
        topo: &NetworkTopology,
        policy: CommunicationPolicy,
        ctx: &mut PlanCtx<'_>,
    ) -> Result<IterationBreakdown, WorkloadError> {
        let batch = self.config.per_npu_minibatch as f64;
        let model = &self.config.model;

        let forward_compute_ns = self
            .config
            .compute
            .time_for_flops_ns(model.forward_flops_per_sample() * batch);
        let backward_compute_ns = self
            .config
            .compute
            .time_for_flops_ns(model.backward_flops_per_sample() * batch);

        // Data-parallel gradient All-Reduce of the dense (MLP) parameters only;
        // the embedding tables are model-parallel and are not all-reduced.
        let dense_gradient_bytes = model.parameters_excluding_kind(LayerKind::Embedding) as f64
            * self.config.gradient_bytes_per_param;
        let (exposed_dp_comm_ns, dp_utilization) = self.comm_time_ns(
            topo,
            CollectiveKind::AllReduce,
            dense_gradient_bytes,
            policy,
            ctx,
        )?;

        // Pooled-embedding All-To-All in the forward pass and its mirror in
        // back-propagation. Both overlap with the bottom-MLP compute; only the
        // non-overlapped remainder is exposed (Sec. 5.2 / Sec. 6.2).
        let a2a_bytes = model.activation_bytes_of_kind(LayerKind::Embedding) * batch;
        let (a2a_fwd_ns, _) =
            self.comm_time_ns(topo, CollectiveKind::AllToAll, a2a_bytes, policy, ctx)?;
        let a2a_bwd_ns = a2a_fwd_ns;
        let bottom_mlp_flops: f64 = model
            .layers()
            .iter()
            .take_while(|l| l.kind() != LayerKind::Embedding)
            .map(|l| l.forward_flops_per_sample())
            .sum();
        let overlap_fwd_ns = self
            .config
            .compute
            .time_for_flops_ns(bottom_mlp_flops * batch);
        let overlap_bwd_ns = self
            .config
            .compute
            .time_for_flops_ns(2.0 * bottom_mlp_flops * batch);
        let exposed_mp_comm_ns =
            (a2a_fwd_ns - overlap_fwd_ns).max(0.0) + (a2a_bwd_ns - overlap_bwd_ns).max(0.0);

        Ok(IterationBreakdown {
            forward_compute_ns,
            backward_compute_ns,
            exposed_mp_comm_ns,
            exposed_dp_comm_ns,
            comm_utilization: dp_utilization,
        })
    }

    fn simulate_model_parallel_zero2(
        &self,
        topo: &NetworkTopology,
        policy: CommunicationPolicy,
        model_parallel_npus: usize,
        ctx: &mut PlanCtx<'_>,
    ) -> Result<IterationBreakdown, WorkloadError> {
        let batch = self.config.per_npu_minibatch as f64;
        let model = &self.config.model;
        if model_parallel_npus < 2 || model_parallel_npus >= topo.num_npus() {
            return Err(WorkloadError::IncompatibleTopology {
                reason: format!(
                    "model-parallel group of {model_parallel_npus} NPUs is not valid on a \
                     {}-NPU machine",
                    topo.num_npus()
                ),
            });
        }
        let (mp_topo, dp_topo) = topo
            .split_for_group(
                model_parallel_npus,
                "model-parallel-group",
                "data-parallel-group",
            )
            .map_err(|err| WorkloadError::IncompatibleTopology {
                reason: err.to_string(),
            })?;
        let mp_degree = mp_topo.num_npus() as f64;

        // Tensor-parallel compute: each NPU executes 1/mp_degree of the model
        // FLOPs for its mini-batch. ZeRO's forward-in-back-propagation
        // (activation recomputation) is counted towards the forward pass
        // (Sec. 6.2), hence the 2× forward term.
        let forward_flops = model.forward_flops_per_sample() * batch / mp_degree;
        let backward_flops = model.backward_flops_per_sample() * batch / mp_degree;
        let forward_compute_ns = self.config.compute.time_for_flops_ns(2.0 * forward_flops);
        let backward_compute_ns = self.config.compute.time_for_flops_ns(backward_flops);

        // Model-parallel communication: one activation All-Reduce per
        // tensor-parallel layer in the forward pass and one
        // gradient All-Reduce per layer in back-propagation, all on the
        // model-parallel sub-topology and all exposed.
        let mp_layers: Vec<_> = model
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::Attention)
            .collect();
        let mut exposed_mp_comm_ns = 0.0;
        let mut mp_utilization = 1.0;
        if let Some(first) = mp_layers.first() {
            let activation_bytes = first.activation_bytes_per_sample() * batch;
            let (per_layer_ns, utilization) = self.comm_time_ns(
                &mp_topo,
                CollectiveKind::AllReduce,
                activation_bytes,
                policy,
                ctx,
            )?;
            // Identical collectives: simulate one and scale by the layer count
            // and the two passes (forward + backward).
            exposed_mp_comm_ns = per_layer_ns * mp_layers.len() as f64 * 2.0;
            mp_utilization = utilization;
        }

        // ZeRO-2 data-parallel gradient synchronisation of this NPU's 1/mp
        // shard of the parameters, on the data-parallel dimensions only
        // (the last network dimension for the Table 2 topologies).
        let shard_gradient_bytes =
            model.total_parameters() as f64 * self.config.gradient_bytes_per_param / mp_degree;
        let (exposed_dp_comm_ns, dp_utilization) = self.comm_time_ns(
            &dp_topo,
            CollectiveKind::AllReduce,
            shard_gradient_bytes,
            policy,
            ctx,
        )?;

        // Duration-weighted utilisation over the exposed collectives.
        let exposed_total = exposed_mp_comm_ns + exposed_dp_comm_ns;
        let comm_utilization = if exposed_total > 0.0 {
            (mp_utilization * exposed_mp_comm_ns + dp_utilization * exposed_dp_comm_ns)
                / exposed_total
        } else {
            1.0
        };

        Ok(IterationBreakdown {
            forward_compute_ns,
            backward_compute_ns,
            exposed_mp_comm_ns,
            exposed_dp_comm_ns,
            comm_utilization,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use themis_net::presets::PresetTopology;

    #[test]
    fn planned_iterations_match_uncached_iterations_bit_for_bit() {
        // One warm plan + workspace across every (workload, policy) cell —
        // including the sub-topology collectives of Transformer-1T's ZeRO-2
        // strategy and DLRM's All-To-Alls — must not change a single bit.
        let topo = PresetTopology::SwSwSw3dHetero.build();
        let plan = SimPlanCache::new();
        let mut workspace = SimWorkspace::new();
        for workload in [Workload::ResNet152, Workload::Dlrm, Workload::Transformer1T] {
            let simulator = TrainingSimulator::new(workload.config());
            for policy in CommunicationPolicy::all() {
                let direct = simulator.simulate_iteration(&topo, policy).unwrap();
                let planned = simulator
                    .simulate_iteration_planned(&topo, policy, &plan, &mut workspace)
                    .unwrap();
                assert_eq!(direct, planned, "{workload} under {policy:?}");
            }
        }
        assert!(!plan.schedules().is_empty());
        assert!(plan.cost_tables().hits() > 0);
    }

    #[test]
    fn breakdown_arithmetic() {
        let breakdown = IterationBreakdown {
            forward_compute_ns: 10.0,
            backward_compute_ns: 20.0,
            exposed_mp_comm_ns: 5.0,
            exposed_dp_comm_ns: 15.0,
            comm_utilization: 0.8,
        };
        assert_eq!(breakdown.total_ns(), 50.0);
        assert_eq!(breakdown.exposed_comm_ns(), 20.0);
        assert_eq!(breakdown.compute_ns(), 30.0);
        assert!((breakdown.comm_fraction() - 0.4).abs() < 1e-9);
        let other = IterationBreakdown {
            forward_compute_ns: 40.0,
            backward_compute_ns: 40.0,
            exposed_mp_comm_ns: 10.0,
            exposed_dp_comm_ns: 10.0,
            comm_utilization: 1.0,
        };
        assert!((breakdown.speedup_over(&other) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn resnet_data_parallel_breakdown_shape() {
        let topo = PresetTopology::SwSwSw3dHomo.build();
        let sim = TrainingSimulator::new(Workload::ResNet152.config());
        let breakdown = sim
            .simulate_iteration(&topo, CommunicationPolicy::Baseline)
            .unwrap();
        // Pure data parallelism: no exposed MP communication; backward compute
        // is about twice the forward compute.
        assert_eq!(breakdown.exposed_mp_comm_ns, 0.0);
        assert!(breakdown.exposed_dp_comm_ns > 0.0);
        let ratio = breakdown.backward_compute_ns / breakdown.forward_compute_ns;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        // ResNet-152 on 1024 NPUs is communication-heavy (Sec. 5.2).
        assert!(breakdown.comm_fraction() > 0.3);
    }

    #[test]
    fn themis_reduces_exposed_communication_for_every_workload() {
        let topo = PresetTopology::SwSwSw3dHomo.build();
        for workload in Workload::all() {
            let sim = TrainingSimulator::new(workload.config());
            let baseline = sim
                .simulate_iteration(&topo, CommunicationPolicy::Baseline)
                .unwrap();
            let themis = sim
                .simulate_iteration(&topo, CommunicationPolicy::ThemisScf)
                .unwrap();
            let ideal = sim
                .simulate_iteration(&topo, CommunicationPolicy::Ideal)
                .unwrap();
            assert!(
                themis.exposed_comm_ns() <= baseline.exposed_comm_ns() * 1.001,
                "{workload:?}: Themis exposed {:.0} vs baseline {:.0}",
                themis.exposed_comm_ns(),
                baseline.exposed_comm_ns()
            );
            assert!(
                ideal.exposed_comm_ns() <= themis.exposed_comm_ns() * 1.001,
                "{workload:?}: ideal should bound Themis"
            );
            // Compute time is policy-independent.
            assert!((themis.compute_ns() - baseline.compute_ns()).abs() < 1e-3);
        }
    }

    #[test]
    fn dlrm_all_to_all_is_mostly_overlapped() {
        let topo = PresetTopology::RingFcRingSw4d.build();
        let sim = TrainingSimulator::new(Workload::Dlrm.config());
        let breakdown = sim
            .simulate_iteration(&topo, CommunicationPolicy::ThemisScf)
            .unwrap();
        // The paper counts only the data-parallel All-Reduce as exposed for
        // DLRM; the All-To-All largely hides behind the bottom-MLP compute, so
        // exposed MP communication must be far smaller than exposed DP.
        assert!(breakdown.exposed_dp_comm_ns > 0.0);
        assert!(breakdown.exposed_mp_comm_ns < breakdown.exposed_dp_comm_ns);
    }

    #[test]
    fn transformer_mp_communication_dominates() {
        let topo = PresetTopology::SwSwSw3dHetero.build();
        let sim = TrainingSimulator::new(Workload::Transformer1T.config());
        let breakdown = sim
            .simulate_iteration(&topo, CommunicationPolicy::Baseline)
            .unwrap();
        // Sec. 6.2: for Transformer-1T the model-parallel communication is the
        // dominant exposed component, and the forward bar includes the ZeRO
        // forward-in-back-propagation.
        assert!(breakdown.exposed_mp_comm_ns > breakdown.exposed_dp_comm_ns);
        assert!(breakdown.forward_compute_ns >= breakdown.backward_compute_ns * 0.99);
        assert!(breakdown.exposed_mp_comm_ns > 0.0);
    }

    #[test]
    fn transformer_dp_traffic_uses_only_the_remainder_dimensions() {
        // On every Table 2 topology the 128-NPU model-parallel group leaves
        // exactly the last dimension for data parallelism, so the simulation
        // must succeed on all of them.
        let sim = TrainingSimulator::new(Workload::Transformer1T.config());
        for preset in PresetTopology::next_generation() {
            let topo = preset.build();
            let breakdown = sim
                .simulate_iteration(&topo, CommunicationPolicy::ThemisScf)
                .unwrap();
            assert!(breakdown.total_ns() > 0.0, "{}", preset.name());
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let topo = PresetTopology::Sw2d.build();
        let mut config = Workload::ResNet152.config();
        config.per_npu_minibatch = 0;
        assert!(TrainingSimulator::new(config)
            .simulate_iteration(&topo, CommunicationPolicy::Baseline)
            .is_err());

        let mut config = Workload::ResNet152.config();
        config.gradient_bytes_per_param = 0.0;
        assert!(TrainingSimulator::new(config)
            .simulate_iteration(&topo, CommunicationPolicy::Baseline)
            .is_err());

        let mut config = Workload::Transformer1T.config();
        config.strategy = ParallelismStrategy::ModelParallelZero2 {
            model_parallel_npus: 1024,
        };
        assert!(TrainingSimulator::new(config)
            .simulate_iteration(&topo, CommunicationPolicy::Baseline)
            .is_err());
    }

    #[test]
    fn streamed_iteration_overlaps_and_never_beats_compute() {
        let topo = PresetTopology::SwSwSw3dHomo.build();
        for workload in [Workload::ResNet152, Workload::Gnmt, Workload::Dlrm] {
            let streamed_sim = TrainingSimulator::new(workload.config());
            let sequential_sim = TrainingSimulator::new(workload.config())
                .with_sim_options(SimOptions::default().with_cross_collective_overlap(false));
            let streamed = streamed_sim
                .simulate_iteration_streamed(&topo, SchedulerKind::ThemisScf)
                .unwrap();
            let sequential = sequential_sim
                .simulate_iteration_streamed(&topo, SchedulerKind::ThemisScf)
                .unwrap();
            // Compute is policy-independent; streaming only shrinks the
            // exposed communication tail.
            assert_eq!(streamed.forward_compute_ns, sequential.forward_compute_ns);
            assert_eq!(streamed.backward_compute_ns, sequential.backward_compute_ns);
            assert!(
                streamed.comm_makespan_ns() <= sequential.comm_makespan_ns() + 1e-6,
                "{workload:?}: streamed {:.0} vs sequential {:.0}",
                streamed.comm_makespan_ns(),
                sequential.comm_makespan_ns()
            );
            assert!(streamed.total_ns() <= sequential.total_ns() + 1e-6);
            assert!(streamed.total_ns() >= streamed.compute_only());
        }
    }

    #[test]
    fn streamed_iteration_rejects_model_parallel_workloads() {
        let topo = PresetTopology::SwSwSw3dHomo.build();
        let sim = TrainingSimulator::new(Workload::Transformer1T.config());
        assert!(sim
            .simulate_iteration_streamed(&topo, SchedulerKind::ThemisScf)
            .is_err());
    }

    impl StreamedIteration {
        fn compute_only(&self) -> f64 {
            self.forward_compute_ns + self.backward_compute_ns
        }
    }

    #[test]
    fn policy_labels() {
        assert_eq!(CommunicationPolicy::fig12_rows().len(), 3);
        assert_eq!(CommunicationPolicy::all().len(), 4);
        assert_eq!(CommunicationPolicy::ThemisScf.to_string(), "Themis+SCF");
        assert_eq!(CommunicationPolicy::Ideal.label(), "Ideal");
    }
}
