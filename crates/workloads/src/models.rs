//! The four evaluated DNN workloads (Sec. 5.2).
//!
//! Layer dimensions and FLOP counts are derived from the public architecture
//! descriptions of each network. The absolute values are approximations
//! (grouped into layer blocks) — the training simulator only needs parameter
//! bytes, activation bytes and FLOPs in the right ballpark; the Themis-vs-
//! baseline comparison depends on the communication-to-compute ratio, not on
//! exact per-layer shapes.

use crate::error::WorkloadError;
use crate::layer::{Layer, LayerKind};

/// A DNN workload: a named list of layer groups.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DnnModel {
    name: String,
    layers: Vec<Layer>,
}

impl DnnModel {
    /// Creates a model from a list of layers.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if no layers are provided.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Result<Self, WorkloadError> {
        if layers.is_empty() {
            return Err(WorkloadError::InvalidParameter {
                reason: "a model requires at least one layer".to_string(),
            });
        }
        Ok(DnnModel {
            name: name.into(),
            layers,
        })
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer groups.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total trainable parameters.
    pub fn total_parameters(&self) -> u64 {
        self.layers.iter().map(Layer::parameters).sum()
    }

    /// Total trainable parameters of the given layer kind.
    pub fn parameters_of_kind(&self, kind: LayerKind) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.kind() == kind)
            .map(Layer::parameters)
            .sum()
    }

    /// Total parameters of every kind *except* the given one.
    pub fn parameters_excluding_kind(&self, kind: LayerKind) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.kind() != kind)
            .map(Layer::parameters)
            .sum()
    }

    /// Total forward FLOPs for one sample.
    pub fn forward_flops_per_sample(&self) -> f64 {
        self.layers
            .iter()
            .map(Layer::forward_flops_per_sample)
            .sum()
    }

    /// Total backward FLOPs for one sample.
    pub fn backward_flops_per_sample(&self) -> f64 {
        self.layers
            .iter()
            .map(Layer::backward_flops_per_sample)
            .sum()
    }

    /// Total forward FLOPs per sample contributed by layers of `kind`.
    pub fn forward_flops_of_kind(&self, kind: LayerKind) -> f64 {
        self.layers
            .iter()
            .filter(|l| l.kind() == kind)
            .map(Layer::forward_flops_per_sample)
            .sum()
    }

    /// Sum of per-sample activation bytes of layers of `kind`.
    pub fn activation_bytes_of_kind(&self, kind: LayerKind) -> f64 {
        self.layers
            .iter()
            .filter(|l| l.kind() == kind)
            .map(Layer::activation_bytes_per_sample)
            .sum()
    }
}

fn layer(
    name: &str,
    kind: LayerKind,
    parameters: u64,
    forward_flops_per_sample: f64,
    activation_bytes_per_sample: f64,
) -> Layer {
    Layer::new(
        name,
        kind,
        parameters,
        forward_flops_per_sample,
        2.0,
        activation_bytes_per_sample,
    )
    .expect("static layer definitions are valid")
}

/// ResNet-152 for ImageNet classification (~60 M parameters, ~11.5 GFLOPs per
/// 224×224 sample), grouped into its residual stages.
pub fn resnet152() -> DnnModel {
    let mb = |x: f64| x * 1024.0 * 1024.0;
    DnnModel::new(
        "ResNet-152",
        vec![
            layer(
                "stem-conv",
                LayerKind::Convolution,
                120_000,
                0.24e9,
                mb(1.53),
            ),
            layer(
                "stage1-x3",
                LayerKind::Convolution,
                220_000,
                1.32e9,
                mb(3.06),
            ),
            layer(
                "stage2-x8",
                LayerKind::Convolution,
                1_220_000,
                2.45e9,
                mb(1.53),
            ),
            layer(
                "stage3-x36",
                LayerKind::Convolution,
                26_100_000,
                5.95e9,
                mb(0.77),
            ),
            layer(
                "stage4-x3",
                LayerKind::Convolution,
                30_500_000,
                1.47e9,
                mb(0.38),
            ),
            layer(
                "classifier",
                LayerKind::Dense,
                2_050_000,
                0.004e9,
                mb(0.002),
            ),
        ],
    )
    .expect("ResNet-152 definition is valid")
}

/// GNMT: 8-layer LSTM encoder + 8-layer LSTM decoder with attention,
/// 1024 hidden units, 32 k vocabulary (~235 M parameters), sequence length 50.
pub fn gnmt() -> DnnModel {
    let seq = 50.0;
    let hidden_bytes = 1024.0 * 2.0 * seq;
    DnnModel::new(
        "GNMT",
        vec![
            layer(
                "encoder-embedding",
                LayerKind::Dense,
                33_554_432,
                0.1e9,
                hidden_bytes,
            ),
            layer(
                "encoder-lstm-x8",
                LayerKind::Recurrent,
                67_100_000,
                6.7e9,
                hidden_bytes,
            ),
            layer(
                "decoder-embedding",
                LayerKind::Dense,
                33_554_432,
                0.1e9,
                hidden_bytes,
            ),
            layer(
                "decoder-lstm-x8",
                LayerKind::Recurrent,
                68_200_000,
                6.8e9,
                hidden_bytes,
            ),
            layer(
                "attention",
                LayerKind::Attention,
                2_100_000,
                0.4e9,
                hidden_bytes,
            ),
            layer(
                "softmax-projection",
                LayerKind::Dense,
                33_554_432,
                1.7e9,
                32_768.0 * 2.0,
            ),
        ],
    )
    .expect("GNMT definition is valid")
}

/// DLRM (recommendation model, Sec. 5.2, reference \[54\]): data-parallel bottom and top
/// MLPs plus model-parallel embedding tables. The embedding tables are the
/// `Embedding` layers; their per-sample activation bytes are the pooled
/// embedding vectors exchanged through All-To-All.
pub fn dlrm() -> DnnModel {
    let tables = 26.0;
    let embedding_dim = 128.0;
    DnnModel::new(
        "DLRM",
        vec![
            layer(
                "bottom-mlp",
                LayerKind::Dense,
                6_500_000,
                13.0e6,
                128.0 * 2.0,
            ),
            layer(
                "embedding-tables-x26",
                LayerKind::Embedding,
                16_640_000_000,
                2.0e6,
                tables * embedding_dim * 2.0,
            ),
            layer("top-mlp", LayerKind::Dense, 39_000_000, 78.0e6, 2.0),
        ],
    )
    .expect("DLRM definition is valid")
}

/// Transformer-1T: a 1-trillion-parameter decoder-only transformer
/// (128 layers, hidden size 25 600, sequence length 2048), trained with
/// Microsoft ZeRO stage 2 and tensor-model-parallelism over 128 NPUs
/// (Sec. 5.2).
pub fn transformer_1t() -> DnnModel {
    let hidden = 25_600.0;
    let seq = 2_048.0;
    let layers = 128u64;
    // 12 × hidden² parameters and ~2 × params × seq FLOPs per transformer layer.
    let params_per_layer = (12.0 * hidden * hidden) as u64;
    let flops_per_layer = 2.0 * params_per_layer as f64 * seq;
    let activation_bytes = seq * hidden * 2.0;
    let mut model_layers = vec![layer(
        "token-embedding",
        LayerKind::Dense,
        51_200 * 25_600,
        0.5e9,
        activation_bytes,
    )];
    for index in 0..layers {
        model_layers.push(layer(
            &format!("transformer-layer-{index:03}"),
            LayerKind::Attention,
            params_per_layer,
            flops_per_layer,
            activation_bytes,
        ));
    }
    DnnModel::new("Transformer-1T", model_layers).expect("Transformer-1T definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet152_parameter_count_is_about_60m() {
        let model = resnet152();
        let params = model.total_parameters();
        assert!((55_000_000..=65_000_000).contains(&params), "{params}");
        // ~11.5 GFLOPs forward per 224×224 sample.
        let gflops = model.forward_flops_per_sample() / 1e9;
        assert!((10.0..=13.0).contains(&gflops), "{gflops}");
        assert!(model.backward_flops_per_sample() > model.forward_flops_per_sample());
    }

    #[test]
    fn gnmt_parameter_count_is_hundreds_of_millions() {
        let model = gnmt();
        let params = model.total_parameters();
        assert!((200_000_000..=300_000_000).contains(&params), "{params}");
        assert!(model.parameters_of_kind(LayerKind::Recurrent) > 100_000_000);
    }

    #[test]
    fn dlrm_embeddings_dominate_but_are_model_parallel() {
        let model = dlrm();
        let dense = model.parameters_excluding_kind(LayerKind::Embedding);
        let sparse = model.parameters_of_kind(LayerKind::Embedding);
        assert!(sparse > 100 * dense);
        assert!((40_000_000..=60_000_000).contains(&dense), "{dense}");
        // Pooled embeddings exchanged per sample: 26 tables × 128 dims × FP16.
        assert_eq!(
            model.activation_bytes_of_kind(LayerKind::Embedding),
            26.0 * 128.0 * 2.0
        );
    }

    #[test]
    fn transformer_has_about_one_trillion_parameters() {
        let model = transformer_1t();
        let params = model.total_parameters() as f64;
        assert!((0.95e12..=1.1e12).contains(&params), "{params}");
        assert_eq!(model.layers().len(), 129);
        assert!(model.parameters_of_kind(LayerKind::Attention) as f64 > 0.9e12);
    }

    #[test]
    fn aggregate_helpers_are_consistent() {
        let model = resnet152();
        let by_kind = model.parameters_of_kind(LayerKind::Convolution)
            + model.parameters_of_kind(LayerKind::Dense);
        assert_eq!(by_kind, model.total_parameters());
        assert_eq!(
            model.parameters_excluding_kind(LayerKind::Dense),
            model.parameters_of_kind(LayerKind::Convolution)
        );
        assert!(model.forward_flops_of_kind(LayerKind::Convolution) > 0.0);
    }

    #[test]
    fn empty_models_are_rejected() {
        assert!(DnnModel::new("empty", vec![]).is_err());
    }
}
