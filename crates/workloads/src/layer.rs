//! Layer-level workload description.
//!
//! A [`Layer`] carries the quantities the training simulator needs: parameter
//! count (for gradient-synchronisation traffic), forward FLOPs per sample (for
//! roofline compute time) and the per-sample activation size (for
//! model-parallel communication). The backward pass is modelled as
//! `backward_flops_factor ×` the forward FLOPs (2× for ordinary layers, which
//! compute both input and weight gradients).

use crate::error::WorkloadError;

/// Broad category of a layer, used by the parallelization strategies to decide
/// how the layer's parameters are partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LayerKind {
    /// Convolutional layer (data-parallel in all evaluated workloads).
    Convolution,
    /// Dense / fully-connected layer (data-parallel, or tensor-parallel for
    /// Transformer-1T).
    Dense,
    /// Recurrent layer (GNMT's LSTM stacks; data-parallel).
    Recurrent,
    /// Embedding table (DLRM's sparse features; model-parallel).
    Embedding,
    /// Attention / transformer block (tensor-parallel for Transformer-1T).
    Attention,
}

/// One layer (or group of similar layers) of a DNN.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Layer {
    name: String,
    kind: LayerKind,
    parameters: u64,
    forward_flops_per_sample: f64,
    backward_flops_factor: f64,
    activation_bytes_per_sample: f64,
}

impl Layer {
    /// Creates a layer description.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for negative or non-finite
    /// FLOP/activation values or a non-positive backward factor.
    pub fn new(
        name: impl Into<String>,
        kind: LayerKind,
        parameters: u64,
        forward_flops_per_sample: f64,
        backward_flops_factor: f64,
        activation_bytes_per_sample: f64,
    ) -> Result<Self, WorkloadError> {
        if !forward_flops_per_sample.is_finite() || forward_flops_per_sample < 0.0 {
            return Err(WorkloadError::InvalidParameter {
                reason: format!(
                    "forward FLOPs must be non-negative, got {forward_flops_per_sample}"
                ),
            });
        }
        if !backward_flops_factor.is_finite() || backward_flops_factor < 0.0 {
            return Err(WorkloadError::InvalidParameter {
                reason: format!(
                    "backward factor must be non-negative, got {backward_flops_factor}"
                ),
            });
        }
        if !activation_bytes_per_sample.is_finite() || activation_bytes_per_sample < 0.0 {
            return Err(WorkloadError::InvalidParameter {
                reason: format!(
                    "activation bytes must be non-negative, got {activation_bytes_per_sample}"
                ),
            });
        }
        Ok(Layer {
            name: name.into(),
            kind,
            parameters,
            forward_flops_per_sample,
            backward_flops_factor,
            activation_bytes_per_sample,
        })
    }

    /// Layer (group) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layer category.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Number of trainable parameters.
    pub fn parameters(&self) -> u64 {
        self.parameters
    }

    /// Bytes of trainable parameters at `bytes_per_param` precision
    /// (2 for FP16 gradients, the paper's setting).
    pub fn parameter_bytes(&self, bytes_per_param: f64) -> f64 {
        self.parameters as f64 * bytes_per_param
    }

    /// Forward-pass FLOPs for one sample.
    pub fn forward_flops_per_sample(&self) -> f64 {
        self.forward_flops_per_sample
    }

    /// Backward-pass FLOPs for one sample
    /// (`backward_flops_factor × forward_flops_per_sample`).
    pub fn backward_flops_per_sample(&self) -> f64 {
        self.forward_flops_per_sample * self.backward_flops_factor
    }

    /// Output activation size for one sample, bytes.
    pub fn activation_bytes_per_sample(&self) -> f64 {
        self.activation_bytes_per_sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_derived_quantities() {
        let layer = Layer::new("fc", LayerKind::Dense, 1_000_000, 2e6, 2.0, 4096.0).unwrap();
        assert_eq!(layer.name(), "fc");
        assert_eq!(layer.kind(), LayerKind::Dense);
        assert_eq!(layer.parameters(), 1_000_000);
        assert_eq!(layer.parameter_bytes(2.0), 2_000_000.0);
        assert_eq!(layer.forward_flops_per_sample(), 2e6);
        assert_eq!(layer.backward_flops_per_sample(), 4e6);
        assert_eq!(layer.activation_bytes_per_sample(), 4096.0);
    }

    #[test]
    fn rejects_invalid_values() {
        assert!(Layer::new("x", LayerKind::Dense, 0, -1.0, 2.0, 0.0).is_err());
        assert!(Layer::new("x", LayerKind::Dense, 0, 1.0, -2.0, 0.0).is_err());
        assert!(Layer::new("x", LayerKind::Dense, 0, 1.0, 2.0, f64::NAN).is_err());
        assert!(Layer::new("x", LayerKind::Dense, 0, f64::INFINITY, 2.0, 0.0).is_err());
    }

    #[test]
    fn zero_parameter_layers_are_allowed() {
        // e.g. pooling / activation-only stages grouped into a layer.
        let layer = Layer::new("pool", LayerKind::Convolution, 0, 1e5, 1.0, 1024.0).unwrap();
        assert_eq!(layer.parameter_bytes(2.0), 0.0);
    }
}
