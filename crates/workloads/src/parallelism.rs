//! Parallelization strategies (Sec. 5.2).

use std::fmt;

/// How a workload is partitioned across the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ParallelismStrategy {
    /// Pure data parallelism: every NPU holds the full model and processes its
    /// own mini-batch shard; weight gradients are All-Reduced across the whole
    /// machine at the end of back-propagation (ResNet-152, GNMT).
    DataParallel,
    /// DLRM's hybrid partitioning: the MLP layers are data-parallel while the
    /// embedding tables are model-parallel; pooled embeddings are exchanged
    /// through All-To-All collectives that overlap with the bottom-MLP compute.
    DlrmHybrid,
    /// Transformer-1T: tensor model parallelism over the first network
    /// dimensions covering `model_parallel_npus` NPUs, ZeRO-2 data parallelism
    /// across the remaining dimensions.
    ModelParallelZero2 {
        /// Number of NPUs in one model-parallel group (the paper uses 128).
        model_parallel_npus: usize,
    },
}

impl ParallelismStrategy {
    /// `true` if the strategy has a model-parallel component.
    pub fn has_model_parallelism(&self) -> bool {
        !matches!(self, ParallelismStrategy::DataParallel)
    }

    /// The size of the model-parallel group, if any.
    pub fn model_parallel_degree(&self) -> Option<usize> {
        match self {
            ParallelismStrategy::ModelParallelZero2 {
                model_parallel_npus,
            } => Some(*model_parallel_npus),
            _ => None,
        }
    }
}

impl fmt::Display for ParallelismStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelismStrategy::DataParallel => f.write_str("data-parallel"),
            ParallelismStrategy::DlrmHybrid => f.write_str("hybrid (DP MLPs + MP embeddings)"),
            ParallelismStrategy::ModelParallelZero2 {
                model_parallel_npus,
            } => {
                write!(
                    f,
                    "model-parallel({model_parallel_npus}) + ZeRO-2 data-parallel"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_parallel_metadata() {
        assert!(!ParallelismStrategy::DataParallel.has_model_parallelism());
        assert!(ParallelismStrategy::DlrmHybrid.has_model_parallelism());
        let zero2 = ParallelismStrategy::ModelParallelZero2 {
            model_parallel_npus: 128,
        };
        assert!(zero2.has_model_parallelism());
        assert_eq!(zero2.model_parallel_degree(), Some(128));
        assert_eq!(
            ParallelismStrategy::DataParallel.model_parallel_degree(),
            None
        );
        assert_eq!(
            ParallelismStrategy::DlrmHybrid.model_parallel_degree(),
            None
        );
    }

    #[test]
    fn display_labels() {
        assert_eq!(
            ParallelismStrategy::DataParallel.to_string(),
            "data-parallel"
        );
        assert!(ParallelismStrategy::DlrmHybrid
            .to_string()
            .contains("MP embeddings"));
        assert!(ParallelismStrategy::ModelParallelZero2 {
            model_parallel_npus: 128
        }
        .to_string()
        .contains("128"));
    }
}
