//! The unified error type of the facade: every entry point of [`crate::api`]
//! returns `Result<_, ThemisError>`, so callers never juggle the five
//! per-crate error types.

use std::error::Error;
use std::fmt;

use themis_collectives::CollectiveError;
use themis_core::ScheduleError;
use themis_net::NetError;
use themis_sim::SimError;
use themis_workloads::WorkloadError;

/// The top-level error type of the `themis` facade.
///
/// Wraps each workspace crate's error type (with `From` conversions, so `?`
/// works across the whole API surface) and adds the failure modes of the
/// campaign layer itself.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThemisError {
    /// A topology construction or validation error (`themis-net`).
    Net(NetError),
    /// A collective algorithm or cost-model error (`themis-collectives`).
    Collective(CollectiveError),
    /// A scheduling error (`themis-core`).
    Schedule(ScheduleError),
    /// A simulation error (`themis-sim`).
    Sim(SimError),
    /// A workload modelling or training-simulation error (`themis-workloads`).
    Workload(WorkloadError),
    /// A campaign was declared with an empty or invalid run matrix.
    Campaign {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A campaign report could not be serialized or deserialized.
    Json {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A service or orchestration failure: a malformed request, a worker
    /// process that could not be spawned, or a shard that kept failing after
    /// its bounded retries ([`crate::api::serve`] / [`crate::api::orchestrator`]).
    Serve {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl ThemisError {
    /// `true` when this error is a cooperative cancellation — an expired
    /// request deadline or an explicit cancel observed by a simulation event
    /// loop ([`SimError::Cancelled`]). The service layer maps these to
    /// `status:"timeout"` responses instead of generic errors.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ThemisError::Sim(SimError::Cancelled { .. }))
    }
}

impl fmt::Display for ThemisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThemisError::Net(err) => write!(f, "topology error: {err}"),
            ThemisError::Collective(err) => write!(f, "collective error: {err}"),
            ThemisError::Schedule(err) => write!(f, "scheduling error: {err}"),
            ThemisError::Sim(err) => write!(f, "simulation error: {err}"),
            ThemisError::Workload(err) => write!(f, "workload error: {err}"),
            ThemisError::Campaign { reason } => write!(f, "invalid campaign: {reason}"),
            ThemisError::Json { reason } => write!(f, "campaign JSON error: {reason}"),
            ThemisError::Serve { reason } => write!(f, "service error: {reason}"),
        }
    }
}

impl Error for ThemisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ThemisError::Net(err) => Some(err),
            ThemisError::Collective(err) => Some(err),
            ThemisError::Schedule(err) => Some(err),
            ThemisError::Sim(err) => Some(err),
            ThemisError::Workload(err) => Some(err),
            ThemisError::Campaign { .. } | ThemisError::Json { .. } | ThemisError::Serve { .. } => {
                None
            }
        }
    }
}

impl From<NetError> for ThemisError {
    fn from(err: NetError) -> Self {
        ThemisError::Net(err)
    }
}

impl From<CollectiveError> for ThemisError {
    fn from(err: CollectiveError) -> Self {
        ThemisError::Collective(err)
    }
}

impl From<ScheduleError> for ThemisError {
    fn from(err: ScheduleError) -> Self {
        ThemisError::Schedule(err)
    }
}

impl From<SimError> for ThemisError {
    fn from(err: SimError) -> Self {
        ThemisError::Sim(err)
    }
}

impl From<WorkloadError> for ThemisError {
    fn from(err: WorkloadError) -> Self {
        ThemisError::Workload(err)
    }
}

impl From<themis_core::json::JsonError> for ThemisError {
    fn from(err: themis_core::json::JsonError) -> Self {
        ThemisError::Json { reason: err.reason }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_wrap_every_crate_error() {
        let net: ThemisError = NetError::EmptyTopology.into();
        assert!(matches!(net, ThemisError::Net(_)));
        let coll: ThemisError = CollectiveError::TooFewParticipants { participants: 1 }.into();
        assert!(matches!(coll, ThemisError::Collective(_)));
        let sched: ThemisError = ScheduleError::ZeroChunks.into();
        assert!(matches!(sched, ThemisError::Schedule(_)));
        let sim: ThemisError = SimError::InvalidOptions {
            reason: "x".to_string(),
        }
        .into();
        assert!(matches!(sim, ThemisError::Sim(_)));
        let work: ThemisError = WorkloadError::InvalidParameter {
            reason: "y".to_string(),
        }
        .into();
        assert!(matches!(work, ThemisError::Workload(_)));
    }

    #[test]
    fn display_and_source_are_populated() {
        let wrapped: ThemisError = NetError::EmptyTopology.into();
        assert!(wrapped.to_string().contains("topology error"));
        assert!(wrapped.source().is_some());
        let flat = ThemisError::Campaign {
            reason: "no sizes".to_string(),
        };
        assert!(flat.to_string().contains("no sizes"));
        assert!(flat.source().is_none());
    }
}
