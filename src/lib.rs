//! # themis
//!
//! A from-scratch Rust reproduction of **Themis: A Network Bandwidth-Aware
//! Collective Scheduling Policy for Distributed Training of DL Models**
//! (Rashidi, Won, Srinivasan, Sridharan, Krishna — ISCA 2022).
//!
//! Themis schedules the *chunks* of a collective communication operation
//! (All-Reduce, Reduce-Scatter, All-Gather) across the dimensions of a
//! hierarchical, multi-dimensional training platform so that every dimension's
//! bandwidth stays busy. This facade crate re-exports the whole workspace:
//!
//! * [`net`] — the multi-dimensional network topology substrate (Table 2
//!   platforms, bandwidth/latency units, provisioning analysis).
//! * [`collectives`] — topology-aware collective algorithms, their cost model
//!   and data-level functional implementations.
//! * [`core`] — the schedulers: the multi-rail hierarchical baseline, Themis
//!   (Algorithm 1), and the ideal 100 %-utilisation bound.
//! * [`sim`] — the discrete-event chunk-pipeline simulator and its reports.
//! * [`workloads`] — DNN workload models (ResNet-152, GNMT, DLRM,
//!   Transformer-1T), parallelization strategies and the training-iteration
//!   simulator.
//!
//! The most common types are re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use themis::{
//!     CollectiveRequest, CollectiveScheduler, PipelineSimulator, PresetTopology,
//!     SchedulerKind, SimOptions,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 1024-NPU next-generation platform from Table 2 of the paper.
//! let topo = PresetTopology::SwSwSw3dHomo.build();
//!
//! // Schedule a 256 MiB gradient All-Reduce with Themis and with the baseline.
//! let request = CollectiveRequest::all_reduce_mib(256.0);
//! let sim = PipelineSimulator::new(&topo, SimOptions::default());
//!
//! let baseline = sim.run(&SchedulerKind::Baseline.build(64).schedule(&request, &topo)?)?;
//! let themis = sim.run(&SchedulerKind::ThemisScf.build(64).schedule(&request, &topo)?)?;
//!
//! assert!(themis.total_time_ns < baseline.total_time_ns);
//! assert!(themis.average_bw_utilization() > baseline.average_bw_utilization());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use themis_collectives as collectives;
pub use themis_core as core;
pub use themis_net as net;
pub use themis_sim as sim;
pub use themis_workloads as workloads;

pub use themis_collectives::{algorithm_for, AlgorithmKind, CollectiveKind, CostModel, PhaseOp};
pub use themis_core::{
    BaselineScheduler, ChunkSchedule, CollectiveRequest, CollectiveSchedule, CollectiveScheduler,
    IdealEstimator, IntraDimPolicy, SchedulerKind, StageOp, ThemisConfig, ThemisScheduler,
};
pub use themis_net::{
    presets::PresetTopology, Bandwidth, DataSize, DimensionSpec, NetworkTopology, TopologyKind,
};
pub use themis_sim::{CollectiveExecutor, PipelineSimulator, SimOptions, SimReport};
pub use themis_workloads::{
    CommunicationPolicy, ComputeModel, IterationBreakdown, TrainingConfig, TrainingSimulator,
    Workload,
};
