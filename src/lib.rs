//! # themis
//!
//! A from-scratch Rust reproduction of **Themis: A Network Bandwidth-Aware
//! Collective Scheduling Policy for Distributed Training of DL Models**
//! (Rashidi, Won, Srinivasan, Sridharan, Krishna — ISCA 2022).
//!
//! Themis schedules the *chunks* of a collective communication operation
//! (All-Reduce, Reduce-Scatter, All-Gather) across the dimensions of a
//! hierarchical, multi-dimensional training platform so that every dimension's
//! bandwidth stays busy. This facade crate re-exports the whole workspace:
//!
//! * [`net`] — the multi-dimensional network topology substrate (Table 2
//!   platforms, bandwidth/latency units, provisioning analysis).
//! * [`collectives`] — topology-aware collective algorithms, their cost model
//!   and data-level functional implementations.
//! * [`core`] — the schedulers: the multi-rail hierarchical baseline, Themis
//!   (Algorithm 1), and the ideal 100 %-utilisation bound.
//! * [`sim`] — the discrete-event chunk-pipeline simulator and its reports.
//! * [`workloads`] — DNN workload models (ResNet-152, GNMT, DLRM,
//!   Transformer-1T), parallelization strategies and the training-iteration
//!   simulator.
//!
//! On top of those it provides [`api`], the high-level experiment layer:
//! [`api::Platform`] / [`api::Job`] describe one run, [`api::Campaign`]
//! declares a sweep over schedulers × topologies × sizes × chunk counts, and
//! [`api::Runner`] executes the expanded matrix sequentially or on a thread
//! pool. Every entry point returns `Result<_, `[`ThemisError`]`>`, the single
//! error type of the facade. Import [`prelude`] to get the whole surface.
//!
//! ## Quickstart
//!
//! ```
//! use themis::prelude::*;
//!
//! # fn main() -> Result<(), ThemisError> {
//! // Sweep a 256 MiB gradient All-Reduce over a 1024-NPU next-generation
//! // platform from Table 2, under every Table 3 scheduler.
//! let report = Campaign::new()
//!     .topologies([PresetTopology::SwSwSw3dHomo])
//!     .sizes_mib([256.0])
//!     .run(&Runner::parallel())?;
//!
//! let size = DataSize::from_mib(256.0);
//! let baseline = report
//!     .find("3D-SW_SW_SW_homo", SchedulerKind::Baseline, size)
//!     .expect("the campaign ran this cell");
//! let themis = report
//!     .find("3D-SW_SW_SW_homo", SchedulerKind::ThemisScf, size)
//!     .expect("the campaign ran this cell");
//!
//! assert!(themis.total_time_ns() < baseline.total_time_ns());
//! assert!(themis.average_bw_utilization() > baseline.average_bw_utilization());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod error;
pub mod prelude;

pub use themis_collectives as collectives;
pub use themis_core as core;
pub use themis_net as net;
pub use themis_sim as sim;
pub use themis_workloads as workloads;

pub use api::{
    merge_reports, CacheStats, Campaign, CampaignCell, CampaignReport, Job, MergedReport,
    MergedResults, Platform, QueuedCollective, RunConfig, RunResult, RunSpec, Runner, ScheduledRun,
    ShardPlan, ShardReport, ShardSpec, ShardStrategy, StreamCampaign, StreamCampaignReport,
    StreamJob, StreamRunConfig, StreamRunResult, StreamSpec, TrainingJob,
};
pub use error::ThemisError;

pub use themis_collectives::{algorithm_for, AlgorithmKind, CollectiveKind, CostModel, PhaseOp};
pub use themis_core::{
    BaselineScheduler, ChunkSchedule, CollectiveRequest, CollectiveSchedule, CollectiveScheduler,
    CostTable, CostTableCache, IdealEstimator, IntraDimPolicy, Registry, ScheduleCache,
    ScheduleKey, SchedulerKind, SimPlanCache, Snapshot, StageOp, ThemisConfig, ThemisScheduler,
};
pub use themis_net::{
    presets::PresetTopology, Bandwidth, DataSize, DimensionSpec, NetworkTopology, TopologyKind,
};
pub use themis_sim::{
    sim_report_trace, stream_report_trace, CollectiveExecutor, CollectiveSpan, FaultEvent,
    FaultKind, FaultPlan, FaultTimeline, PipelineSimulator, SimOptions, SimReport, SimWorkspace,
    StreamEntry, StreamReport, StreamSimulator, TimelineEntry, TimelineReport, TimelineSimulator,
};
pub use themis_workloads::{
    collective_stream, CommunicationPolicy, ComputeModel, FaultScenario, IterationBreakdown,
    StreamedCollective, StreamedIteration, TrainingConfig, TrainingSimulator, Workload,
};
