//! One-import surface for the facade: `use themis::prelude::*;` brings in the
//! experiment layer ([`Campaign`], [`Runner`], [`Platform`], [`Job`], ...) and
//! the workspace types campaigns are built from.

pub use crate::api::{
    merge_reports, CacheStats, Campaign, CampaignCell, CampaignReport, Job, MergedReport,
    MergedResults, Orchestrator, OrchestratorOptions, Platform, QueuedCollective, RunConfig,
    RunResult, RunSpec, Runner, ScheduledRun, ServeOptions, Service, ShardPlan, ShardReport,
    ShardSpec, ShardStrategy, StreamCampaign, StreamCampaignReport, StreamJob, StreamRunConfig,
    StreamRunResult, StreamSpec, SweepOutcome, TrainingJob,
};
pub use crate::error::ThemisError;

pub use themis_collectives::{CollectiveKind, PhaseOp};
pub use themis_core::{
    CollectiveRequest, CollectiveSchedule, CollectiveScheduler, CostTableCache, IntraDimPolicy,
    ScheduleCache, SchedulerKind, SimPlanCache,
};
pub use themis_net::presets::PresetTopology;
pub use themis_net::{Bandwidth, DataSize, DimensionSpec, NetworkTopology, TopologyKind};
pub use themis_sim::{
    CollectiveSpan, FaultEvent, FaultKind, FaultPlan, SimOptions, SimReport, SimWorkspace,
    StreamReport,
};
pub use themis_workloads::{
    CommunicationPolicy, FaultScenario, IterationBreakdown, StreamedIteration, TrainingConfig,
    TrainingSimulator, Workload,
};
