//! Result types of the experiment layer: one [`RunResult`] per executed cell
//! and a [`CampaignReport`] for the whole matrix, with dependency-free JSON
//! serialization.

use crate::api::json::Json;
use crate::error::ThemisError;
use themis_collectives::CollectiveKind;
use themis_core::SchedulerKind;
use themis_net::DataSize;
use themis_sim::stats::OpRecord;
use themis_sim::{DimReport, SimReport};

/// The configuration of one run: which job ran on which platform.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Topology (platform) name.
    pub topology: String,
    /// Scheduler configuration (Table 3).
    pub scheduler: SchedulerKind,
    /// Collective pattern.
    pub collective: CollectiveKind,
    /// Per-NPU collective size.
    pub size: DataSize,
    /// Chunks per collective.
    pub chunks: usize,
}

impl std::fmt::Display for RunConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {:.0} MiB on {} under {} ({} chunks)",
            self.collective,
            self.size.as_mib(),
            self.topology,
            self.scheduler,
            self.chunks
        )
    }
}

/// One executed campaign cell: its configuration plus the full simulation
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// What was run.
    pub config: RunConfig,
    /// What the simulator measured.
    pub report: SimReport,
}

impl RunResult {
    /// Completion time of the collective, ns.
    pub fn total_time_ns(&self) -> f64 {
        self.report.total_time_ns
    }

    /// Completion time of the collective, µs.
    pub fn total_time_us(&self) -> f64 {
        self.report.total_time_us()
    }

    /// The paper's weighted average BW utilisation for this run.
    pub fn average_bw_utilization(&self) -> f64 {
        self.report.average_bw_utilization()
    }
}

/// The outcome of a whole campaign: every cell of the expanded run matrix, in
/// deterministic matrix order (platform → size → chunk count → scheduler)
/// regardless of the runner backend.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignReport {
    results: Vec<RunResult>,
}

impl CampaignReport {
    /// Wraps a list of run results.
    pub fn new(results: Vec<RunResult>) -> Self {
        CampaignReport { results }
    }

    /// The executed cells, in matrix order.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// Number of executed cells.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` if the campaign executed no cells.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Iterates over the executed cells.
    pub fn iter(&self) -> std::slice::Iter<'_, RunResult> {
        self.results.iter()
    }

    /// The first cell matching `(topology, scheduler, size)`, if any
    /// (ignores the chunk count; see [`CampaignReport::find_with_chunks`]).
    pub fn find(
        &self,
        topology: &str,
        scheduler: SchedulerKind,
        size: DataSize,
    ) -> Option<&RunResult> {
        self.results.iter().find(|r| {
            r.config.topology == topology
                && r.config.scheduler == scheduler
                && r.config.size == size
        })
    }

    /// The cell matching `(topology, scheduler, size, chunks)`, if any.
    pub fn find_with_chunks(
        &self,
        topology: &str,
        scheduler: SchedulerKind,
        size: DataSize,
        chunks: usize,
    ) -> Option<&RunResult> {
        self.results.iter().find(|r| {
            r.config.topology == topology
                && r.config.scheduler == scheduler
                && r.config.size == size
                && r.config.chunks == chunks
        })
    }

    /// Speedup of `scheduler` over the baseline on the same `(topology, size)`
    /// cell: baseline time divided by `scheduler` time.
    pub fn speedup_over_baseline(
        &self,
        topology: &str,
        size: DataSize,
        scheduler: SchedulerKind,
    ) -> Option<f64> {
        let baseline = self.find(topology, SchedulerKind::Baseline, size)?;
        let other = self.find(topology, scheduler, size)?;
        Some(baseline.total_time_ns() / other.total_time_ns())
    }

    /// Speedups of `scheduler` over the baseline across every `(topology,
    /// size, chunks)` cell both schedulers cover, in matrix order.
    pub fn speedups_over_baseline(&self, scheduler: SchedulerKind) -> Vec<f64> {
        self.results
            .iter()
            .filter(|r| r.config.scheduler == scheduler)
            .filter_map(|r| {
                let baseline = self.find_with_chunks(
                    &r.config.topology,
                    SchedulerKind::Baseline,
                    r.config.size,
                    r.config.chunks,
                )?;
                Some(baseline.total_time_ns() / r.total_time_ns())
            })
            .collect()
    }

    /// Serializes the report to compact JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The report as a [`Json`] value (embedded in merged shard reports).
    pub(crate) fn to_json_value(&self) -> Json {
        Json::obj([
            ("version", Json::Num(1.0)),
            (
                "results",
                Json::Arr(self.results.iter().map(run_result_to_json).collect()),
            ),
        ])
    }

    /// Deserializes a report previously produced by
    /// [`CampaignReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Json`] on malformed text or an unknown layout.
    pub fn from_json(text: &str) -> Result<Self, ThemisError> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Deserializes a report from an already-parsed [`Json`] value.
    pub(crate) fn from_json_value(value: &Json) -> Result<Self, ThemisError> {
        let version = value.field("version")?.as_usize()?;
        if version != 1 {
            return Err(ThemisError::Json {
                reason: format!("unsupported campaign report version {version}"),
            });
        }
        let results = value
            .field("results")?
            .as_arr()?
            .iter()
            .map(run_result_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignReport::new(results))
    }
}

impl<'a> IntoIterator for &'a CampaignReport {
    type Item = &'a RunResult;
    type IntoIter = std::slice::Iter<'a, RunResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

pub(crate) fn scheduler_from_label(label: &str) -> Result<SchedulerKind, ThemisError> {
    SchedulerKind::all()
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| ThemisError::Json {
            reason: format!("unknown scheduler `{label}`"),
        })
}

pub(crate) fn collective_from_label(label: &str) -> Result<CollectiveKind, ThemisError> {
    CollectiveKind::all()
        .into_iter()
        .find(|k| k.to_string() == label)
        .ok_or_else(|| ThemisError::Json {
            reason: format!("unknown collective `{label}`"),
        })
}

pub(crate) fn run_result_to_json(result: &RunResult) -> Json {
    Json::obj([
        ("config", config_to_json(&result.config)),
        ("report", sim_report_to_json(&result.report)),
    ])
}

pub(crate) fn run_result_from_json(value: &Json) -> Result<RunResult, ThemisError> {
    Ok(RunResult {
        config: config_from_json(value.field("config")?)?,
        report: sim_report_from_json(value.field("report")?)?,
    })
}

fn config_to_json(config: &RunConfig) -> Json {
    Json::obj([
        ("topology", Json::Str(config.topology.clone())),
        ("scheduler", Json::Str(config.scheduler.label().to_string())),
        ("collective", Json::Str(config.collective.to_string())),
        ("size_bytes", Json::Num(config.size.as_bytes_f64())),
        ("chunks", Json::Num(config.chunks as f64)),
    ])
}

fn config_from_json(value: &Json) -> Result<RunConfig, ThemisError> {
    Ok(RunConfig {
        topology: value.field("topology")?.as_str()?.to_string(),
        scheduler: scheduler_from_label(value.field("scheduler")?.as_str()?)?,
        collective: collective_from_label(value.field("collective")?.as_str()?)?,
        size: DataSize::from_bytes(value.field("size_bytes")?.as_f64()? as u64),
        chunks: value.field("chunks")?.as_usize()?,
    })
}

pub(crate) fn sim_report_to_json(report: &SimReport) -> Json {
    Json::obj([
        ("scheduler_name", Json::Str(report.scheduler_name.clone())),
        ("topology_name", Json::Str(report.topology_name.clone())),
        ("total_time_ns", Json::Num(report.total_time_ns)),
        ("activity_window_ns", Json::Num(report.activity_window_ns)),
        (
            "dims",
            Json::Arr(report.dims.iter().map(dim_to_json).collect()),
        ),
        (
            "op_log",
            Json::Arr(report.op_log.iter().map(op_to_json).collect()),
        ),
    ])
}

pub(crate) fn sim_report_from_json(value: &Json) -> Result<SimReport, ThemisError> {
    Ok(SimReport {
        scheduler_name: value.field("scheduler_name")?.as_str()?.to_string(),
        topology_name: value.field("topology_name")?.as_str()?.to_string(),
        total_time_ns: value.field("total_time_ns")?.as_f64()?,
        activity_window_ns: value.field("activity_window_ns")?.as_f64()?,
        dims: value
            .field("dims")?
            .as_arr()?
            .iter()
            .map(dim_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        op_log: value
            .field("op_log")?
            .as_arr()?
            .iter()
            .map(op_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

pub(crate) fn dim_to_json(dim: &DimReport) -> Json {
    Json::obj([
        (
            "bandwidth_bytes_per_ns",
            Json::Num(dim.bandwidth_bytes_per_ns),
        ),
        ("busy_ns", Json::Num(dim.busy_ns)),
        ("wire_bytes", Json::Num(dim.wire_bytes)),
        ("ops_executed", Json::Num(dim.ops_executed as f64)),
        (
            "presence_intervals",
            Json::Arr(
                dim.presence_intervals
                    .iter()
                    .map(|(s, e)| Json::Arr(vec![Json::Num(*s), Json::Num(*e)]))
                    .collect(),
            ),
        ),
    ])
}

pub(crate) fn dim_from_json(value: &Json) -> Result<DimReport, ThemisError> {
    let intervals = value
        .field("presence_intervals")?
        .as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return Err(ThemisError::Json {
                    reason: "presence interval must be a [start, end] pair".to_string(),
                });
            }
            Ok((pair[0].as_f64()?, pair[1].as_f64()?))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(DimReport {
        bandwidth_bytes_per_ns: value.field("bandwidth_bytes_per_ns")?.as_f64()?,
        busy_ns: value.field("busy_ns")?.as_f64()?,
        wire_bytes: value.field("wire_bytes")?.as_f64()?,
        ops_executed: value.field("ops_executed")?.as_usize()?,
        presence_intervals: intervals,
    })
}

fn op_to_json(op: &OpRecord) -> Json {
    Json::obj([
        ("dim", Json::Num(op.dim as f64)),
        ("chunk", Json::Num(op.chunk as f64)),
        ("stage", Json::Num(op.stage as f64)),
        ("label", Json::Str(op.label.clone())),
        ("start_ns", Json::Num(op.start_ns)),
        ("end_ns", Json::Num(op.end_ns)),
    ])
}

fn op_from_json(value: &Json) -> Result<OpRecord, ThemisError> {
    Ok(OpRecord {
        dim: value.field("dim")?.as_usize()?,
        chunk: value.field("chunk")?.as_usize()?,
        stage: value.field("stage")?.as_usize()?,
        label: value.field("label")?.as_str()?.to_string(),
        start_ns: value.field("start_ns")?.as_f64()?,
        end_ns: value.field("end_ns")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Job, Platform};
    use themis_net::presets::PresetTopology;

    fn small_report() -> CampaignReport {
        let platform = Platform::preset(PresetTopology::Sw2d);
        let results = SchedulerKind::all()
            .into_iter()
            .map(|kind| {
                Job::all_reduce_mib(32.0)
                    .chunks(4)
                    .scheduler(kind)
                    .run_on(&platform)
                    .unwrap()
            })
            .collect();
        CampaignReport::new(results)
    }

    #[test]
    fn lookup_and_speedups() {
        let report = small_report();
        assert_eq!(report.len(), 3);
        let size = DataSize::from_mib(32.0);
        let baseline = report
            .find("2D-SW_SW", SchedulerKind::Baseline, size)
            .unwrap();
        assert_eq!(baseline.config.chunks, 4);
        let speedup = report
            .speedup_over_baseline("2D-SW_SW", size, SchedulerKind::ThemisScf)
            .unwrap();
        assert!(speedup >= 1.0);
        assert_eq!(
            report
                .speedups_over_baseline(SchedulerKind::ThemisScf)
                .len(),
            1
        );
        assert!(report
            .find("2D-SW_SW", SchedulerKind::Baseline, DataSize::from_mib(1.0))
            .is_none());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = small_report();
        let text = report.to_json();
        let back = CampaignReport::from_json(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_rejects_unknown_layouts() {
        assert!(CampaignReport::from_json("{}").is_err());
        assert!(CampaignReport::from_json("{\"version\": 2, \"results\": []}").is_err());
        assert!(CampaignReport::from_json("not json").is_err());
        let empty = CampaignReport::from_json("{\"version\": 1, \"results\": []}").unwrap();
        assert!(empty.is_empty());
    }
}
