//! The [`Campaign`] builder: declare a sweep as data (platforms × sizes ×
//! chunk counts × schedulers), expand it into a run matrix, and execute it
//! through a [`Runner`].

use crate::api::job::{Job, DEFAULT_CHUNKS};
use crate::api::platform::Platform;
use crate::api::report::CampaignReport;
use crate::api::runner::{RunSpec, Runner};
use crate::error::ThemisError;
use themis_collectives::CollectiveKind;
use themis_core::{SchedulerKind, SimPlanCache};
use themis_net::presets::PresetTopology;
use themis_net::DataSize;
use themis_sim::SimOptions;

/// A declarative sweep over the evaluation axes of the paper: which platforms,
/// collective sizes, chunk granularities and scheduler configurations to run.
///
/// Defaults match the paper's evaluation: all three Table 3 schedulers,
/// 64 chunks per collective, and All-Reduce as the collective pattern.
/// Platforms and sizes have no default — a campaign must declare at least one
/// of each, or [`Campaign::expand`] returns [`ThemisError::Campaign`].
///
/// ```
/// use themis::prelude::*;
///
/// # fn main() -> Result<(), ThemisError> {
/// let report = Campaign::new()
///     .topologies(PresetTopology::next_generation())
///     .sizes_mib([64.0])
///     .run(&Runner::parallel())?;
/// assert_eq!(report.len(), 6 * 3); // 6 platforms x 3 schedulers x 1 size
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    platforms: Vec<Platform>,
    schedulers: Vec<SchedulerKind>,
    sizes: Vec<DataSize>,
    chunk_counts: Vec<usize>,
    collective: CollectiveKind,
    sim_options: Option<SimOptions>,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign {
            platforms: Vec::new(),
            schedulers: SchedulerKind::all().to_vec(),
            sizes: Vec::new(),
            chunk_counts: vec![DEFAULT_CHUNKS],
            collective: CollectiveKind::AllReduce,
            sim_options: None,
        }
    }
}

impl Campaign {
    /// Creates an empty campaign with the paper's default axes (see the type
    /// docs).
    pub fn new() -> Self {
        Campaign::default()
    }

    /// Appends one platform to the sweep.
    #[must_use]
    pub fn platform(mut self, platform: impl Into<Platform>) -> Self {
        self.platforms.push(platform.into());
        self
    }

    /// Replaces the platform axis.
    #[must_use]
    pub fn platforms<I, P>(mut self, platforms: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: Into<Platform>,
    {
        self.platforms = platforms.into_iter().map(Into::into).collect();
        self
    }

    /// Replaces the platform axis with preset topologies.
    #[must_use]
    pub fn topologies<I: IntoIterator<Item = PresetTopology>>(self, presets: I) -> Self {
        self.platforms(presets)
    }

    /// Replaces the scheduler axis (default: all three Table 3 schedulers).
    #[must_use]
    pub fn schedulers<I: IntoIterator<Item = SchedulerKind>>(mut self, schedulers: I) -> Self {
        self.schedulers = schedulers.into_iter().collect();
        self
    }

    /// Replaces the collective-size axis.
    #[must_use]
    pub fn sizes<I: IntoIterator<Item = DataSize>>(mut self, sizes: I) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Replaces the collective-size axis with sizes given in mebibytes.
    #[must_use]
    pub fn sizes_mib<I: IntoIterator<Item = f64>>(self, mib: I) -> Self {
        self.sizes(mib.into_iter().map(DataSize::from_mib))
    }

    /// Replaces the chunk-granularity axis (default: `[64]`).
    #[must_use]
    pub fn chunk_counts<I: IntoIterator<Item = usize>>(mut self, counts: I) -> Self {
        self.chunk_counts = counts.into_iter().collect();
        self
    }

    /// Sets the collective pattern (default: All-Reduce).
    #[must_use]
    pub fn collective(mut self, kind: CollectiveKind) -> Self {
        self.collective = kind;
        self
    }

    /// Overrides the simulator options of *every* platform in the sweep
    /// (individual platforms keep their own options when this is unset).
    #[must_use]
    pub fn sim_options(mut self, options: SimOptions) -> Self {
        self.sim_options = Some(options);
        self
    }

    /// The number of cells the run matrix expands to.
    pub fn matrix_size(&self) -> usize {
        self.platforms.len() * self.sizes.len() * self.chunk_counts.len() * self.schedulers.len()
    }

    /// Expands the campaign into its run matrix, ordered platform → size →
    /// chunk count → scheduler (scheduler innermost).
    ///
    /// The expanded [`RunSpec`]s are self-contained: execute them through a
    /// [`Runner`], or hand slices of the matrix to other processes via
    /// [`crate::api::shard`].
    ///
    /// ```
    /// use themis::prelude::*;
    ///
    /// # fn main() -> Result<(), ThemisError> {
    /// let specs = Campaign::new()
    ///     .topologies([PresetTopology::Sw2d, PresetTopology::SwSwSw3dHomo])
    ///     .sizes_mib([64.0])
    ///     .chunk_counts([16])
    ///     .expand()?;
    /// assert_eq!(specs.len(), 2 * 1 * 1 * 3); // platforms x sizes x chunks x schedulers
    /// assert_eq!(specs[0].job.scheduler_kind(), SchedulerKind::Baseline);
    /// assert_eq!(specs[3].platform.name(), "3D-SW_SW_SW_homo");
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Campaign`] if any axis is empty or a chunk
    /// count is zero.
    pub fn expand(&self) -> Result<Vec<RunSpec>, ThemisError> {
        for (axis, empty) in [
            ("platforms", self.platforms.is_empty()),
            ("sizes", self.sizes.is_empty()),
            ("chunk counts", self.chunk_counts.is_empty()),
            ("schedulers", self.schedulers.is_empty()),
        ] {
            if empty {
                return Err(ThemisError::Campaign {
                    reason: format!("the {axis} axis is empty"),
                });
            }
        }
        if let Some(&zero) = self.chunk_counts.iter().find(|&&c| c == 0) {
            return Err(ThemisError::Campaign {
                reason: format!("chunk counts must be positive, got {zero}"),
            });
        }
        if let Some(options) = &self.sim_options {
            options.validate().map_err(ThemisError::from)?;
        }
        let mut specs = Vec::with_capacity(self.matrix_size());
        for platform in &self.platforms {
            let platform = match &self.sim_options {
                Some(options) => platform.clone().with_options(options.clone()),
                None => platform.clone(),
            };
            for &size in &self.sizes {
                for &chunks in &self.chunk_counts {
                    for &scheduler in &self.schedulers {
                        let job = Job::new(self.collective, size)
                            .chunks(chunks)
                            .scheduler(scheduler);
                        specs.push(RunSpec::new(platform.clone(), job));
                    }
                }
            }
        }
        Ok(specs)
    }

    /// Expands the campaign and executes every cell through `runner`.
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Campaign`] for an invalid matrix and otherwise
    /// propagates the first scheduling/simulation error in matrix order.
    pub fn run(&self, runner: &Runner) -> Result<CampaignReport, ThemisError> {
        let specs = self.expand()?;
        Ok(CampaignReport::new(runner.execute(&specs)?))
    }

    /// Like [`Campaign::run`], but executing through a caller-provided
    /// [`SimPlanCache`]: several campaigns that sweep overlapping (topology,
    /// collective, chunks, scheduler) cells — e.g. the figure-suite
    /// experiments — share one warm cache of schedules and per-op cost
    /// tables. Reports are bit-identical to [`Campaign::run`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Campaign::run`].
    pub fn run_with_cache(
        &self,
        runner: &Runner,
        plan: &SimPlanCache,
    ) -> Result<CampaignReport, ThemisError> {
        let specs = self.expand()?;
        Ok(CampaignReport::new(
            runner.execute_with_cache(&specs, plan)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_covers_the_full_matrix_in_declared_order() {
        let campaign = Campaign::new()
            .topologies([PresetTopology::Sw2d, PresetTopology::SwSwSw3dHomo])
            .sizes_mib([10.0, 20.0])
            .chunk_counts([4, 8]);
        assert_eq!(campaign.matrix_size(), 2 * 2 * 2 * 3);
        let specs = campaign.expand().unwrap();
        assert_eq!(specs.len(), 24);
        // Scheduler is the innermost axis.
        assert_eq!(specs[0].job.scheduler_kind(), SchedulerKind::Baseline);
        assert_eq!(specs[1].job.scheduler_kind(), SchedulerKind::ThemisFifo);
        assert_eq!(specs[2].job.scheduler_kind(), SchedulerKind::ThemisScf);
        // Then chunk counts, then sizes, then platforms.
        assert_eq!(specs[0].job.chunk_count(), 4);
        assert_eq!(specs[3].job.chunk_count(), 8);
        assert_eq!(specs[6].job.size(), DataSize::from_mib(20.0));
        assert_eq!(specs[12].platform.name(), "3D-SW_SW_SW_homo");
    }

    #[test]
    fn empty_axes_are_rejected() {
        let no_platforms = Campaign::new().sizes_mib([10.0]).expand();
        assert!(matches!(no_platforms, Err(ThemisError::Campaign { .. })));
        let no_sizes = Campaign::new().topology_fixture().expand();
        assert!(matches!(no_sizes, Err(ThemisError::Campaign { .. })));
        let no_schedulers = Campaign::new()
            .topology_fixture()
            .sizes_mib([10.0])
            .schedulers([])
            .expand();
        assert!(matches!(no_schedulers, Err(ThemisError::Campaign { .. })));
        let zero_chunks = Campaign::new()
            .topology_fixture()
            .sizes_mib([10.0])
            .chunk_counts([0])
            .expand();
        assert!(matches!(zero_chunks, Err(ThemisError::Campaign { .. })));
    }

    #[test]
    fn sim_options_override_applies_to_every_cell() {
        let options = SimOptions::default().with_max_concurrent_ops(2);
        let specs = Campaign::new()
            .topology_fixture()
            .sizes_mib([10.0])
            .sim_options(options)
            .expand()
            .unwrap();
        assert!(specs
            .iter()
            .all(|s| s.platform.options().max_concurrent_ops_per_dim == 2));
        let bad = Campaign::new()
            .topology_fixture()
            .sizes_mib([10.0])
            .sim_options(SimOptions::default().with_max_concurrent_ops(0))
            .expand();
        assert!(matches!(bad, Err(ThemisError::Sim(_))));
    }

    impl Campaign {
        /// Test helper: one small platform.
        fn topology_fixture(self) -> Self {
            self.topologies([PresetTopology::Sw2d])
        }
    }
}
