//! Stream jobs: queued multi-collective work for the experiment layer.
//!
//! A [`StreamJob`] is the campaign-level analogue of [`crate::api::Job`] for
//! *streams* of collectives: an ordered queue of [`QueuedCollective`]s (each
//! with an issue time) executed by the streaming queue engine
//! ([`themis_sim::stream`]). Whether queued collectives overlap in flight or
//! run back-to-back is controlled by the platform's
//! [`SimOptions::cross_collective_overlap`] flag, so the same job measures
//! both the streaming and the sequential-timeline policies.
//!
//! [`StreamJob::from_training`] derives a stream from a [`TrainingJob`]'s
//! layer graph: one gradient All-Reduce per layer, issued as back-propagation
//! completes the layer (plus DLRM's gradient-side All-To-All).
//!
//! [`StreamCampaign`] sweeps stream jobs over platforms × schedulers and runs
//! through the same [`Runner`] backends as collective campaigns — parallel
//! and sequential execution are bit-identical — and
//! [`StreamCampaignReport`] serializes through [`crate::api::json`].
//!
//! ```
//! use themis::prelude::*;
//!
//! # fn main() -> Result<(), ThemisError> {
//! let stream = StreamJob::named("two-grads")
//!     .push(QueuedCollective::all_reduce_mib("layer-2", 64.0))
//!     .push(QueuedCollective::all_reduce_mib("layer-1", 64.0));
//! let report = StreamCampaign::new()
//!     .topologies([PresetTopology::SwSwSw3dHomo])
//!     .schedulers([SchedulerKind::ThemisScf])
//!     .stream(stream)
//!     .run(&Runner::parallel())?;
//! let cell = &report.results()[0];
//! assert!(cell.makespan_ns() > 0.0);
//! # Ok(())
//! # }
//! ```

use crate::api::job::DEFAULT_CHUNKS;
use crate::api::json::Json;
use crate::api::platform::Platform;
use crate::api::report::{
    dim_from_json, dim_to_json, scheduler_from_label, sim_report_from_json, sim_report_to_json,
};
use crate::api::runner::Runner;
use crate::api::training::TrainingJob;
use crate::error::ThemisError;
use std::sync::Arc;
use themis_collectives::CollectiveKind;
use themis_core::plan::CostTable;
use themis_core::{
    CollectiveRequest, CollectiveSchedule, ScheduleCache, ScheduleError, SchedulerKind,
    SimPlanCache,
};
use themis_net::presets::PresetTopology;
use themis_net::DataSize;
use themis_sim::stream::{StreamEntry, StreamSimulator};
use themis_sim::{CollectiveSpan, SimOptions, SimWorkspace, StreamReport};
use themis_workloads::{collective_stream, CommunicationPolicy};

/// One collective of a stream job: pattern, per-NPU size and the time the
/// workload issues it (ns; default `0.0`, i.e. queued from the start).
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedCollective {
    label: String,
    issue_ns: f64,
    kind: CollectiveKind,
    size: DataSize,
}

impl QueuedCollective {
    /// Creates a queued collective issued at time zero.
    pub fn new(label: impl Into<String>, kind: CollectiveKind, size: DataSize) -> Self {
        QueuedCollective {
            label: label.into(),
            issue_ns: 0.0,
            kind,
            size,
        }
    }

    /// Convenience constructor for an All-Reduce of `mib` mebibytes.
    pub fn all_reduce_mib(label: impl Into<String>, mib: f64) -> Self {
        QueuedCollective::new(label, CollectiveKind::AllReduce, DataSize::from_mib(mib))
    }

    /// Sets the issue time (ns since the stream's clock zero).
    #[must_use]
    pub fn issued_at(mut self, issue_ns: f64) -> Self {
        self.issue_ns = issue_ns;
        self
    }

    /// The label used in reports.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The issue time, ns.
    pub fn issue_ns(&self) -> f64 {
        self.issue_ns
    }

    /// The collective pattern.
    pub fn kind(&self) -> CollectiveKind {
        self.kind
    }

    /// The per-NPU data size.
    pub fn size(&self) -> DataSize {
        self.size
    }

    /// The [`CollectiveRequest`] this queued collective issues.
    pub fn request(&self) -> CollectiveRequest {
        CollectiveRequest::new(self.kind, self.size)
    }
}

/// A stream job: a named queue of collectives plus the scheduler configuration
/// and chunk granularity every queued collective is scheduled with.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamJob {
    name: String,
    entries: Vec<QueuedCollective>,
    scheduler: SchedulerKind,
    chunks: usize,
}

impl StreamJob {
    /// Creates an empty stream job (defaults: Themis+SCF, 64 chunks per
    /// collective).
    pub fn named(name: impl Into<String>) -> Self {
        StreamJob {
            name: name.into(),
            entries: Vec::new(),
            scheduler: SchedulerKind::ThemisScf,
            chunks: DEFAULT_CHUNKS,
        }
    }

    /// Derives a stream from a [`TrainingJob`]'s layer graph: per-layer
    /// gradient collectives issued as back-propagation completes each layer
    /// (wait-free back-propagation). The job's policy selects the scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Campaign`] for the Ideal policy (it has no
    /// executable schedule) and [`ThemisError::Workload`] for workloads whose
    /// strategy cannot be expressed as a single-network stream
    /// (Transformer-1T's model-parallel ZeRO-2).
    pub fn from_training(job: &TrainingJob) -> Result<Self, ThemisError> {
        let scheduler = match job.policy_kind() {
            CommunicationPolicy::Baseline => SchedulerKind::Baseline,
            CommunicationPolicy::ThemisFifo => SchedulerKind::ThemisFifo,
            CommunicationPolicy::ThemisScf => SchedulerKind::ThemisScf,
            CommunicationPolicy::Ideal => {
                return Err(ThemisError::Campaign {
                    reason: "the Ideal policy is an analytic bound with no executable \
                             schedule, so it cannot drive a stream job"
                        .to_string(),
                });
            }
        };
        let config = job.workload().config();
        let entries = collective_stream(&config)?
            .into_iter()
            .map(|c| {
                let size = c.data_size();
                QueuedCollective {
                    label: c.label,
                    issue_ns: c.issue_ns,
                    kind: c.kind,
                    size,
                }
            })
            .collect();
        Ok(StreamJob {
            name: format!("{}-iteration", job.workload().name()),
            entries,
            scheduler,
            chunks: config.chunks_per_collective,
        })
    }

    /// Appends one collective to the queue.
    #[must_use]
    pub fn push(mut self, collective: QueuedCollective) -> Self {
        self.entries.push(collective);
        self
    }

    /// Replaces the queue.
    #[must_use]
    pub fn collectives<I: IntoIterator<Item = QueuedCollective>>(mut self, entries: I) -> Self {
        self.entries = entries.into_iter().collect();
        self
    }

    /// Sets the scheduler configuration (Table 3).
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the chunks-per-collective granularity.
    #[must_use]
    pub fn chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks;
        self
    }

    /// The stream's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The queued collectives, in push order.
    pub fn entries(&self) -> &[QueuedCollective] {
        &self.entries
    }

    /// The scheduler configuration.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler
    }

    /// The chunk granularity.
    pub fn chunk_count(&self) -> usize {
        self.chunks
    }

    /// The [`StreamRunConfig`] describing this job on `platform`.
    pub fn config_on(&self, platform: &Platform) -> StreamRunConfig {
        StreamRunConfig {
            topology: platform.name().to_string(),
            scheduler: self.scheduler,
            stream: self.name.clone(),
            collectives: self.entries.len(),
            chunks: self.chunks,
        }
    }

    /// Schedules and simulates the whole queue on `platform`. Overlap
    /// behaviour follows the platform's
    /// [`SimOptions::cross_collective_overlap`].
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    pub fn run_on(&self, platform: &Platform) -> Result<StreamRunResult, ThemisError> {
        if self.chunks == 0 {
            return Err(ThemisError::Schedule(ScheduleError::ZeroChunks));
        }
        let entries = self.stream_entries();
        let mut scheduler = self.scheduler.build(self.chunks);
        let report = StreamSimulator::new(platform.topology(), platform.options())
            .run(scheduler.as_mut(), &entries)?;
        Ok(StreamRunResult {
            config: self.config_on(platform),
            report,
        })
    }

    /// Like [`StreamJob::run_on`], but scheduling every queued collective
    /// through a shared [`ScheduleCache`]: identical queued collectives (same
    /// kind and size — e.g. the repeated per-layer gradients of a derived
    /// training stream) are scheduled once and share one schedule, both within
    /// this stream and with every other cell using the same cache. Reports are
    /// bit-identical to the uncached path.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    pub fn run_on_cached(
        &self,
        platform: &Platform,
        cache: &ScheduleCache,
    ) -> Result<StreamRunResult, ThemisError> {
        if self.chunks == 0 {
            return Err(ThemisError::Schedule(ScheduleError::ZeroChunks));
        }
        let entries = self.stream_entries();
        // Faults active at t = 0 fold into the bandwidths the scheduler sees
        // (see `Platform::scheduling_topology`); later events stay invisible.
        let sched_topo = platform.scheduling_topology()?;
        let schedules: Vec<Arc<CollectiveSchedule>> = entries
            .iter()
            .map(|entry| {
                cache.get_or_schedule(
                    sched_topo.as_ref(),
                    &entry.request,
                    self.chunks,
                    self.scheduler,
                )
            })
            .collect::<Result<_, _>>()?;
        let report = StreamSimulator::new(platform.topology(), platform.options())
            .run_prescheduled(&entries, &schedules)?;
        Ok(StreamRunResult {
            config: self.config_on(platform),
            report,
        })
    }

    /// The full precompiled-plan fast path: every queued collective's
    /// schedule comes from the plan's [`ScheduleCache`], its per-op cost
    /// table from the plan's [`themis_core::CostTableCache`] (identical
    /// queued collectives — e.g. repeated per-layer gradients — share one
    /// schedule *and* one cost table), and the merged event loop runs on the
    /// caller's reusable [`SimWorkspace`]. Reports are bit-identical to
    /// [`StreamJob::run_on`].
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    pub fn run_planned(
        &self,
        platform: &Platform,
        plan: &SimPlanCache,
        workspace: &mut SimWorkspace,
    ) -> Result<StreamRunResult, ThemisError> {
        if self.chunks == 0 {
            return Err(ThemisError::Schedule(ScheduleError::ZeroChunks));
        }
        let entries = self.stream_entries();
        let sched_topo = platform.scheduling_topology()?;
        let simulator = StreamSimulator::new(platform.topology(), platform.options());
        let cost_model = themis_collectives::CostModel::new();
        let mut schedules: Vec<Arc<CollectiveSchedule>> = Vec::with_capacity(entries.len());
        let mut tables: Vec<Arc<CostTable>> = Vec::with_capacity(entries.len());
        for entry in &entries {
            let schedule = {
                let _span = workspace.phase_schedule_span();
                plan.schedules().get_or_schedule(
                    sched_topo.as_ref(),
                    &entry.request,
                    self.chunks,
                    self.scheduler,
                )?
            };
            {
                let _span = workspace.phase_cost_span();
                tables.push(plan.cost_tables().get_or_build(
                    platform.topology(),
                    &cost_model,
                    &schedule,
                )?);
            }
            schedules.push(schedule);
        }
        let report = simulator.run_planned_cached(
            &entries,
            &schedules,
            &tables,
            workspace,
            Some(plan.cost_tables()),
        )?;
        Ok(StreamRunResult {
            config: self.config_on(platform),
            report,
        })
    }

    /// The engine-level entries of this stream, in push order.
    fn stream_entries(&self) -> Vec<StreamEntry> {
        self.entries
            .iter()
            .map(|c| StreamEntry::new(c.label.clone(), c.issue_ns, c.request()))
            .collect()
    }
}

/// The configuration of one stream-campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRunConfig {
    /// Topology (platform) name.
    pub topology: String,
    /// Scheduler configuration (Table 3).
    pub scheduler: SchedulerKind,
    /// Stream name.
    pub stream: String,
    /// Number of queued collectives.
    pub collectives: usize,
    /// Chunks per collective.
    pub chunks: usize,
}

impl std::fmt::Display for StreamRunConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stream `{}` ({} collectives) on {} under {} ({} chunks)",
            self.stream, self.collectives, self.topology, self.scheduler, self.chunks
        )
    }
}

/// One executed stream-campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRunResult {
    /// What was run.
    pub config: StreamRunConfig,
    /// What the stream engine measured.
    pub report: StreamReport,
}

impl StreamRunResult {
    /// Makespan of the stream (first issue to last completion), ns.
    pub fn makespan_ns(&self) -> f64 {
        self.report.makespan_ns()
    }

    /// Time two or more collectives were in flight together, ns.
    pub fn overlap_ns(&self) -> f64 {
        self.report.overlap_ns
    }

    /// The per-collective spans.
    pub fn spans(&self) -> &[CollectiveSpan] {
        &self.report.spans
    }
}

/// One cell of an expanded stream campaign: a [`StreamJob`] bound to a
/// [`Platform`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// The platform the stream runs on.
    pub platform: Platform,
    /// The stream job to run.
    pub job: StreamJob,
}

impl StreamSpec {
    /// Creates a stream spec.
    pub fn new(platform: Platform, job: StreamJob) -> Self {
        StreamSpec { platform, job }
    }

    /// Executes the spec.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    pub fn execute(&self) -> Result<StreamRunResult, ThemisError> {
        self.job.run_on(&self.platform)
    }
}

/// A declarative sweep of stream jobs over platforms × schedulers.
///
/// Expansion order is platform → stream → scheduler (scheduler innermost),
/// mirroring [`crate::api::Campaign`]. Each cell runs the stream under one
/// Table 3 scheduler; the streams' own scheduler settings are overridden by
/// the scheduler axis.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCampaign {
    platforms: Vec<Platform>,
    schedulers: Vec<SchedulerKind>,
    streams: Vec<StreamJob>,
    sim_options: Option<SimOptions>,
}

impl Default for StreamCampaign {
    fn default() -> Self {
        StreamCampaign {
            platforms: Vec::new(),
            schedulers: SchedulerKind::all().to_vec(),
            streams: Vec::new(),
            sim_options: None,
        }
    }
}

impl StreamCampaign {
    /// Creates an empty stream campaign (scheduler axis defaults to all three
    /// Table 3 schedulers).
    pub fn new() -> Self {
        StreamCampaign::default()
    }

    /// Appends one platform to the sweep.
    #[must_use]
    pub fn platform(mut self, platform: impl Into<Platform>) -> Self {
        self.platforms.push(platform.into());
        self
    }

    /// Replaces the platform axis.
    #[must_use]
    pub fn platforms<I, P>(mut self, platforms: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: Into<Platform>,
    {
        self.platforms = platforms.into_iter().map(Into::into).collect();
        self
    }

    /// Replaces the platform axis with preset topologies.
    #[must_use]
    pub fn topologies<I: IntoIterator<Item = PresetTopology>>(self, presets: I) -> Self {
        self.platforms(presets)
    }

    /// Replaces the scheduler axis.
    #[must_use]
    pub fn schedulers<I: IntoIterator<Item = SchedulerKind>>(mut self, schedulers: I) -> Self {
        self.schedulers = schedulers.into_iter().collect();
        self
    }

    /// Appends one stream to the sweep.
    #[must_use]
    pub fn stream(mut self, stream: StreamJob) -> Self {
        self.streams.push(stream);
        self
    }

    /// Replaces the stream axis.
    #[must_use]
    pub fn streams<I: IntoIterator<Item = StreamJob>>(mut self, streams: I) -> Self {
        self.streams = streams.into_iter().collect();
        self
    }

    /// Overrides the simulator options of every platform in the sweep (e.g.
    /// `SimOptions::default().with_cross_collective_overlap(false)` for the
    /// sequential-timeline reference).
    #[must_use]
    pub fn sim_options(mut self, options: SimOptions) -> Self {
        self.sim_options = Some(options);
        self
    }

    /// The number of cells the run matrix expands to.
    pub fn matrix_size(&self) -> usize {
        self.platforms.len() * self.streams.len() * self.schedulers.len()
    }

    /// Expands the campaign into its run matrix (platform → stream →
    /// scheduler).
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Campaign`] if any axis is empty or a stream has
    /// no collectives.
    pub fn expand(&self) -> Result<Vec<StreamSpec>, ThemisError> {
        for (axis, empty) in [
            ("platforms", self.platforms.is_empty()),
            ("streams", self.streams.is_empty()),
            ("schedulers", self.schedulers.is_empty()),
        ] {
            if empty {
                return Err(ThemisError::Campaign {
                    reason: format!("the {axis} axis is empty"),
                });
            }
        }
        if let Some(stream) = self.streams.iter().find(|s| s.entries().is_empty()) {
            return Err(ThemisError::Campaign {
                reason: format!("stream `{}` has no collectives", stream.name()),
            });
        }
        if let Some(options) = &self.sim_options {
            options.validate().map_err(ThemisError::from)?;
        }
        let mut specs = Vec::with_capacity(self.matrix_size());
        for platform in &self.platforms {
            let platform = match &self.sim_options {
                Some(options) => platform.clone().with_options(options.clone()),
                None => platform.clone(),
            };
            for stream in &self.streams {
                for &scheduler in &self.schedulers {
                    specs.push(StreamSpec::new(
                        platform.clone(),
                        stream.clone().scheduler(scheduler),
                    ));
                }
            }
        }
        Ok(specs)
    }

    /// Expands the campaign and executes every cell through `runner`.
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Campaign`] for an invalid matrix and otherwise
    /// propagates the first scheduling/simulation error in matrix order.
    pub fn run(&self, runner: &Runner) -> Result<StreamCampaignReport, ThemisError> {
        let specs = self.expand()?;
        Ok(StreamCampaignReport::new(runner.execute_streams(&specs)?))
    }

    /// Like [`StreamCampaign::run`], but executing through a caller-provided
    /// [`SimPlanCache`] shared with other campaigns (bit-identical reports).
    ///
    /// # Errors
    ///
    /// Same contract as [`StreamCampaign::run`].
    pub fn run_with_cache(
        &self,
        runner: &Runner,
        plan: &SimPlanCache,
    ) -> Result<StreamCampaignReport, ThemisError> {
        let specs = self.expand()?;
        Ok(StreamCampaignReport::new(
            runner.execute_with_cache(&specs, plan)?,
        ))
    }
}

/// The outcome of a stream campaign: every cell in matrix order, regardless of
/// the runner backend.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamCampaignReport {
    results: Vec<StreamRunResult>,
}

impl StreamCampaignReport {
    /// Wraps a list of stream run results.
    pub fn new(results: Vec<StreamRunResult>) -> Self {
        StreamCampaignReport { results }
    }

    /// The executed cells, in matrix order.
    pub fn results(&self) -> &[StreamRunResult] {
        &self.results
    }

    /// Number of executed cells.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` if the campaign executed no cells.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Iterates over the executed cells.
    pub fn iter(&self) -> std::slice::Iter<'_, StreamRunResult> {
        self.results.iter()
    }

    /// The cell matching `(topology, stream, scheduler)`, if any.
    pub fn find(
        &self,
        topology: &str,
        stream: &str,
        scheduler: SchedulerKind,
    ) -> Option<&StreamRunResult> {
        self.results.iter().find(|r| {
            r.config.topology == topology
                && r.config.stream == stream
                && r.config.scheduler == scheduler
        })
    }

    /// Makespan speedup of `scheduler` over the baseline on the same
    /// `(topology, stream)` cell.
    pub fn makespan_speedup_over_baseline(
        &self,
        topology: &str,
        stream: &str,
        scheduler: SchedulerKind,
    ) -> Option<f64> {
        let baseline = self.find(topology, stream, SchedulerKind::Baseline)?;
        let other = self.find(topology, stream, scheduler)?;
        if other.makespan_ns() <= 0.0 {
            return Some(f64::INFINITY);
        }
        Some(baseline.makespan_ns() / other.makespan_ns())
    }

    /// Serializes the report to compact JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The report as a [`Json`] value (embedded in merged shard reports).
    pub(crate) fn to_json_value(&self) -> Json {
        Json::obj([
            ("version", Json::Num(1.0)),
            ("kind", Json::Str("stream-campaign".to_string())),
            (
                "results",
                Json::Arr(self.results.iter().map(stream_result_to_json).collect()),
            ),
        ])
    }

    /// Deserializes a report previously produced by
    /// [`StreamCampaignReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Json`] on malformed text or an unknown layout.
    pub fn from_json(text: &str) -> Result<Self, ThemisError> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Deserializes a report from an already-parsed [`Json`] value.
    pub(crate) fn from_json_value(value: &Json) -> Result<Self, ThemisError> {
        let version = value.field("version")?.as_usize()?;
        let kind = value.field("kind")?.as_str()?;
        if version != 1 || kind != "stream-campaign" {
            return Err(ThemisError::Json {
                reason: format!("unsupported stream campaign report `{kind}` v{version}"),
            });
        }
        let results = value
            .field("results")?
            .as_arr()?
            .iter()
            .map(stream_result_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StreamCampaignReport::new(results))
    }
}

impl<'a> IntoIterator for &'a StreamCampaignReport {
    type Item = &'a StreamRunResult;
    type IntoIter = std::slice::Iter<'a, StreamRunResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

pub(crate) fn stream_result_to_json(result: &StreamRunResult) -> Json {
    Json::obj([
        (
            "config",
            Json::obj([
                ("topology", Json::Str(result.config.topology.clone())),
                (
                    "scheduler",
                    Json::Str(result.config.scheduler.label().to_string()),
                ),
                ("stream", Json::Str(result.config.stream.clone())),
                ("collectives", Json::Num(result.config.collectives as f64)),
                ("chunks", Json::Num(result.config.chunks as f64)),
            ]),
        ),
        ("report", stream_report_to_json(&result.report)),
    ])
}

pub(crate) fn stream_result_from_json(value: &Json) -> Result<StreamRunResult, ThemisError> {
    let config = value.field("config")?;
    Ok(StreamRunResult {
        config: StreamRunConfig {
            topology: config.field("topology")?.as_str()?.to_string(),
            scheduler: scheduler_from_label(config.field("scheduler")?.as_str()?)?,
            stream: config.field("stream")?.as_str()?.to_string(),
            collectives: config.field("collectives")?.as_usize()?,
            chunks: config.field("chunks")?.as_usize()?,
        },
        report: stream_report_from_json(value.field("report")?)?,
    })
}

fn stream_report_to_json(report: &StreamReport) -> Json {
    Json::obj([
        ("scheduler_name", Json::Str(report.scheduler_name.clone())),
        ("topology_name", Json::Str(report.topology_name.clone())),
        ("finish_ns", Json::Num(report.finish_ns)),
        ("network_busy_ns", Json::Num(report.network_busy_ns)),
        ("overlap_ns", Json::Num(report.overlap_ns)),
        (
            "dims",
            Json::Arr(report.dims.iter().map(dim_to_json).collect()),
        ),
        (
            "spans",
            Json::Arr(report.spans.iter().map(span_to_json).collect()),
        ),
    ])
}

fn stream_report_from_json(value: &Json) -> Result<StreamReport, ThemisError> {
    Ok(StreamReport {
        scheduler_name: value.field("scheduler_name")?.as_str()?.to_string(),
        topology_name: value.field("topology_name")?.as_str()?.to_string(),
        finish_ns: value.field("finish_ns")?.as_f64()?,
        network_busy_ns: value.field("network_busy_ns")?.as_f64()?,
        overlap_ns: value.field("overlap_ns")?.as_f64()?,
        dims: value
            .field("dims")?
            .as_arr()?
            .iter()
            .map(dim_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        spans: value
            .field("spans")?
            .as_arr()?
            .iter()
            .map(span_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn span_to_json(span: &CollectiveSpan) -> Json {
    Json::obj([
        ("index", Json::Num(span.index as f64)),
        ("label", Json::Str(span.label.clone())),
        ("issue_ns", Json::Num(span.issue_ns)),
        ("start_ns", Json::Num(span.start_ns)),
        ("finish_ns", Json::Num(span.finish_ns)),
        ("active_ns", Json::Num(span.active_ns)),
        ("overlapped_ns", Json::Num(span.overlapped_ns)),
        ("report", sim_report_to_json(&span.report)),
    ])
}

fn span_from_json(value: &Json) -> Result<CollectiveSpan, ThemisError> {
    Ok(CollectiveSpan {
        index: value.field("index")?.as_usize()?,
        label: value.field("label")?.as_str()?.to_string(),
        issue_ns: value.field("issue_ns")?.as_f64()?,
        start_ns: value.field("start_ns")?.as_f64()?,
        finish_ns: value.field("finish_ns")?.as_f64()?,
        active_ns: value.field("active_ns")?.as_f64()?,
        overlapped_ns: value.field("overlapped_ns")?.as_f64()?,
        report: sim_report_from_json(value.field("report")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_workloads::Workload;

    fn two_collective_stream() -> StreamJob {
        StreamJob::named("pair")
            .push(QueuedCollective::all_reduce_mib("g2", 64.0))
            .push(QueuedCollective::all_reduce_mib("g1", 64.0).issued_at(1_000.0))
            .chunks(8)
    }

    #[test]
    fn builders_carry_their_settings() {
        let job = two_collective_stream().scheduler(SchedulerKind::Baseline);
        assert_eq!(job.name(), "pair");
        assert_eq!(job.entries().len(), 2);
        assert_eq!(job.scheduler_kind(), SchedulerKind::Baseline);
        assert_eq!(job.chunk_count(), 8);
        let entry = &job.entries()[1];
        assert_eq!(entry.label(), "g1");
        assert_eq!(entry.issue_ns(), 1_000.0);
        assert_eq!(entry.kind(), CollectiveKind::AllReduce);
        assert_eq!(entry.size(), DataSize::from_mib(64.0));
        assert_eq!(entry.request().kind(), CollectiveKind::AllReduce);
    }

    #[test]
    fn run_on_executes_and_overlap_helps() {
        let platform = Platform::preset(PresetTopology::SwSwSw3dHomo);
        let streamed = two_collective_stream().run_on(&platform).unwrap();
        let sequential = two_collective_stream()
            .run_on(
                &platform
                    .clone()
                    .with_options(SimOptions::default().with_cross_collective_overlap(false)),
            )
            .unwrap();
        assert!(streamed.makespan_ns() <= sequential.makespan_ns() + 1e-6);
        assert!(streamed.overlap_ns() > 0.0);
        assert_eq!(streamed.spans().len(), 2);
        assert_eq!(streamed.config.collectives, 2);
        assert!(streamed.config.to_string().contains("stream `pair`"));
    }

    #[test]
    fn from_training_derives_layer_streams() {
        let job = StreamJob::from_training(&TrainingJob::new(Workload::ResNet152)).unwrap();
        assert_eq!(job.name(), "ResNet-152-iteration");
        assert!(!job.entries().is_empty());
        assert_eq!(job.scheduler_kind(), SchedulerKind::ThemisScf);
        // Issue times follow back-propagation order.
        let issues: Vec<f64> = job.entries().iter().map(|e| e.issue_ns()).collect();
        assert!(issues.windows(2).all(|w| w[0] <= w[1]));

        let err = StreamJob::from_training(
            &TrainingJob::new(Workload::ResNet152).policy(CommunicationPolicy::Ideal),
        )
        .unwrap_err();
        assert!(matches!(err, ThemisError::Campaign { .. }));
        let err = StreamJob::from_training(&TrainingJob::new(Workload::Transformer1T)).unwrap_err();
        assert!(matches!(err, ThemisError::Workload(_)));
    }

    #[test]
    fn campaign_expansion_and_validation() {
        let campaign = StreamCampaign::new()
            .topologies([PresetTopology::Sw2d, PresetTopology::SwSwSw3dHomo])
            .stream(two_collective_stream());
        assert_eq!(campaign.matrix_size(), 6); // 2 platforms x 1 stream x 3 schedulers
        let specs = campaign.expand().unwrap();
        assert_eq!(specs.len(), 6);
        // Scheduler is the innermost axis and overrides the job's setting.
        assert_eq!(specs[0].job.scheduler_kind(), SchedulerKind::Baseline);
        assert_eq!(specs[1].job.scheduler_kind(), SchedulerKind::ThemisFifo);
        assert_eq!(specs[2].job.scheduler_kind(), SchedulerKind::ThemisScf);
        assert_eq!(specs[3].platform.name(), "3D-SW_SW_SW_homo");

        assert!(matches!(
            StreamCampaign::new().expand(),
            Err(ThemisError::Campaign { .. })
        ));
        assert!(matches!(
            StreamCampaign::new()
                .topologies([PresetTopology::Sw2d])
                .stream(StreamJob::named("empty"))
                .expand(),
            Err(ThemisError::Campaign { .. })
        ));
        assert!(matches!(
            StreamCampaign::new()
                .topologies([PresetTopology::Sw2d])
                .stream(two_collective_stream())
                .schedulers([])
                .expand(),
            Err(ThemisError::Campaign { .. })
        ));
    }

    #[test]
    fn stream_campaign_report_round_trips_through_json() {
        let report = StreamCampaign::new()
            .topologies([PresetTopology::Sw2d])
            .schedulers([SchedulerKind::Baseline, SchedulerKind::ThemisScf])
            .stream(two_collective_stream())
            .run(&Runner::sequential())
            .unwrap();
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
        let text = report.to_json();
        let back = StreamCampaignReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        let speedup = back
            .makespan_speedup_over_baseline("2D-SW_SW", "pair", SchedulerKind::ThemisScf)
            .unwrap();
        assert!(speedup > 0.0);
        assert!(back
            .find("2D-SW_SW", "pair", SchedulerKind::ThemisFifo)
            .is_none());

        assert!(StreamCampaignReport::from_json("{}").is_err());
        assert!(StreamCampaignReport::from_json(
            "{\"version\": 1, \"kind\": \"campaign\", \"results\": []}"
        )
        .is_err());
    }
}
