//! `themis-serve`: a resident campaign service with a persistent warm plan
//! cache.
//!
//! Every run used to be a cold process: schedules and cost tables were
//! rebuilt per invocation, so the warm-plan speedups of the
//! [`themis_core::SimPlanCache`] evaporated across process boundaries. This
//! module keeps them alive: a [`Service`] owns **one** [`SimPlanCache`] (plus
//! a result-level cell cache) for its whole lifetime and answers a stream of
//! JSONL requests — campaigns, stream campaigns, shard specs, orchestrated
//! multi-process sweeps — against it. The `themis-serve` binary in
//! `crates/bench` wraps a `Service` in a stdin/stdout or Unix-domain-socket
//! daemon.
//!
//! ## Protocol
//!
//! One JSON object per line in, one JSON object per line out (the
//! dependency-free [`crate::api::json`] format — no new dependencies):
//!
//! ```text
//! → {"id":1,"kind":"ping"}
//! ← {"id":1,"status":"ok","kind":"ping","result":{...},"cache":{...}}
//! → {"id":2,"kind":"campaign","cells":[{"platform":{...},"job":{...}},...]}
//! ← {"id":2,"status":"ok","kind":"campaign","result":<campaign report>,"cache":{...}}
//! → {"id":3,"kind":"nope"}
//! ← {"id":3,"status":"error","error":"unknown request kind `nope` (...)"}
//! ```
//!
//! A malformed line never crashes the service — it answers with a structured
//! `status:"error"` response and keeps serving. Lines longer than
//! [`ServeOptions::max_line_bytes`] are drained without ever being buffered
//! and answered the same way, so a runaway client cannot exhaust the
//! daemon's memory. Request kinds:
//!
//! | kind            | payload                                  | result |
//! |-----------------|------------------------------------------|--------|
//! | `ping`          | —                                        | resident cache sizes |
//! | `campaign`      | `cells: [{platform, job}]`               | the [`CampaignReport`], bit-identical to [`Runner::execute`] |
//! | `stream`        | `cells: [{platform, stream}]`            | the [`StreamCampaignReport`], bit-identical to [`Runner::execute_streams`] |
//! | `shard`         | `spec: <shard-spec JSON>`                | the [`crate::api::ShardReport`] |
//! | `sweep`         | campaign/stream cells + orchestration    | a merged multi-process sweep ([`crate::api::orchestrator`]) |
//! | `cache-stats`   | —                                        | cumulative cache counters |
//! | `cache-publish` | `path` (optional)                        | merge-publishes the schedule cache to its file |
//! | `metrics`       | —                                        | telemetry snapshot (JSON + Prometheus text) |
//! | `shutdown`      | —                                        | acknowledges, then the serve loop exits |
//!
//! Every `ok` response carries a `cache` block with the request's **delta**
//! hit/miss counters (cells served from the resident result cache, schedules
//! served from the plan cache) — the second identical campaign request
//! reports `cells.hits > 0` without simulating anything.
//!
//! ## Deadlines, backpressure, and panic isolation
//!
//! Beyond `ok` and `error`, two structured statuses make overload and
//! slowness first-class protocol citizens instead of hung connections:
//!
//! * **`timeout`** — `campaign`/`stream` requests may carry a `deadline_ms`
//!   field (or inherit [`ServeOptions::default_deadline_ms`]). The deadline
//!   becomes a [`CancelToken`] polled at the simulation event-loop epochs;
//!   an expired request answers `status:"timeout"` and its partially
//!   computed cell is *forgotten*, never memoised. Counted in
//!   `serve.timeouts`.
//! * **`overloaded`** — with [`ServeOptions::max_in_flight`] set, heavy
//!   requests past the in-flight budget are **shed immediately** with
//!   `status:"overloaded"` + `retry_after_ms` rather than queued, so a
//!   flood degrades into prompt retry advice instead of unbounded latency.
//!   Light kinds (`ping`, `cache-stats`, `cache-publish`, `metrics`,
//!   `shutdown`) bypass admission so health checks work under load. Counted
//!   in `serve.shed`.
//!
//! A panicking request handler (or cell computation) is caught, answered as
//! a structured `status:"error"` response, and counted in `serve.panics`;
//! only the panicking cell's cache slot is poisoned — the daemon and every
//! concurrent request keep running. Both defaults are off: with no deadline
//! and no budget configured, behavior (and every report byte) is identical
//! to the unhardened service.
//!
//! ## Cell dedup across concurrent requests
//!
//! Identical cells are deduplicated with a single-flight result cache: when
//! two in-flight requests (e.g. two socket connections) race on the same
//! (platform, job) cell, the first computes it and the second *waits for that
//! computation* instead of re-simulating. Results are evicted FIFO beyond
//! [`ServeOptions::max_resident_cells`], bounding the daemon's working set.

use crate::api::json::Json;
use crate::api::orchestrator::{Orchestrator, OrchestratorOptions};
use crate::api::report::{CampaignReport, RunResult};
use crate::api::runner::{CampaignCell, RunSpec, Runner};
use crate::api::shard::{
    job_from_json, job_to_json, platform_from_json, platform_to_json, stream_job_from_json,
    stream_job_to_json, ShardSpec, ShardStrategy,
};
use crate::api::stream::{StreamCampaignReport, StreamRunResult, StreamSpec};
use crate::error::ThemisError;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use themis_core::telemetry::{CacheStats, Registry};
use themis_core::SimPlanCache;
use themis_sim::{CancelToken, SimWorkspace};

/// Configuration of a [`Service`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Path of the `shard-worker` binary used by `sweep` requests. `None`
    /// disables orchestrated sweeps (they answer with an error response).
    pub worker: Option<PathBuf>,
    /// Schedule-cache file shared across processes: loaded by
    /// [`Service::load_cache_file`] at startup, merge-published by
    /// [`Service::publish_cache_file`] (and the `cache-publish` request).
    pub cache_file: Option<PathBuf>,
    /// Scratch directory for orchestrated sweeps (spec/partial/progress
    /// files).
    pub work_dir: PathBuf,
    /// FIFO capacity of the resident result cache; older cells are evicted
    /// beyond it so a long-running daemon's memory stays bounded.
    pub max_resident_cells: usize,
    /// Worker threads per spawned shard worker in `sweep` requests.
    pub worker_threads: usize,
    /// Upper bound on one request line, in bytes. A longer line is drained
    /// without buffering it and answered with a structured `status:"error"`
    /// response, so a hostile or buggy client can never balloon the daemon's
    /// memory. Default 16 MiB.
    pub max_line_bytes: usize,
    /// Admission budget: how many *heavy* requests (campaign, stream, shard,
    /// sweep, extension kinds) may be in flight at once. Requests beyond the
    /// budget are **shed** with a `status:"overloaded"` response carrying a
    /// `retry_after_ms` hint instead of queueing unboundedly. `0` (the
    /// default) disables admission control entirely — the unconfigured
    /// service behaves exactly as before.
    pub max_in_flight: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms` field, in milliseconds. `None` (the default) means no
    /// implicit deadline.
    pub default_deadline_ms: Option<u64>,
    /// The `retry_after_ms` hint attached to `status:"overloaded"` responses.
    pub retry_after_ms: u64,
}

/// Default request-line cap: 16 MiB (comfortably above any real campaign
/// request, far below anything that could hurt a resident daemon).
pub const DEFAULT_MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            worker: None,
            cache_file: None,
            work_dir: PathBuf::from("serve-work"),
            max_resident_cells: 4096,
            worker_threads: 1,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            max_in_flight: 0,
            default_deadline_ms: None,
            retry_after_ms: DEFAULT_RETRY_AFTER_MS,
        }
    }
}

/// Default `retry_after_ms` hint on shed responses: long enough for a typical
/// cell to finish, short enough that a polite client retries promptly.
pub const DEFAULT_RETRY_AFTER_MS: u64 = 100;

/// The resident campaign service: a persistent warm [`SimPlanCache`], a
/// single-flight result cache, and a JSONL request handler.
///
/// All methods take `&self`; a `Service` wrapped in an [`Arc`] serves many
/// connections concurrently, and concurrent requests share (and deduplicate
/// against) the same caches.
///
/// ```
/// use themis::api::serve::Service;
///
/// let service = Service::default();
/// let request = r#"{"id":1,"kind":"ping"}"#;
/// let response = service.handle_line(request);
/// assert!(response.contains("\"status\":\"ok\""));
/// // Malformed requests answer with structured errors instead of crashing.
/// assert!(service.handle_line("{oops").contains("\"status\":\"error\""));
/// ```
#[derive(Debug)]
pub struct Service {
    options: ServeOptions,
    plan: SimPlanCache,
    cells: CellCache,
    shutdown: AtomicBool,
    /// Heavy requests currently being dispatched; the admission budget
    /// ([`ServeOptions::max_in_flight`]) caps it and [`Service::wait_idle`]
    /// drains it.
    in_flight: AtomicUsize,
    /// Per-instance telemetry: per-kind request counters, latency histograms,
    /// and the sim counters of every workspace this service creates. The
    /// `metrics` request kind snapshots it.
    telemetry: Registry,
}

impl Default for Service {
    fn default() -> Self {
        Service::new(ServeOptions::default())
    }
}

impl Service {
    /// Creates a service with empty caches.
    pub fn new(options: ServeOptions) -> Self {
        let cells = CellCache::new(options.max_resident_cells);
        Service {
            options,
            plan: SimPlanCache::new(),
            cells,
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            telemetry: Registry::new(),
        }
    }

    /// The service's telemetry registry (what a `metrics` request snapshots).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// The service's configuration.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// The resident precompiled-plan cache shared by every request.
    pub fn plan(&self) -> &SimPlanCache {
        &self.plan
    }

    /// Number of results currently resident in the cell cache.
    pub fn resident_cells(&self) -> usize {
        self.cells.len()
    }

    /// `true` once a `shutdown` request has been handled (or
    /// [`Service::begin_shutdown`] was called — e.g. from a signal handler);
    /// serve loops exit and socket daemons stop accepting.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Requests a graceful shutdown from outside the protocol (the
    /// `themis-serve` binary calls this from its SIGTERM handler): serve
    /// loops stop accepting new work; in-flight requests run to completion
    /// and are drained with [`Service::wait_idle`].
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Number of heavy requests currently being dispatched.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Blocks until no heavy request is in flight (the graceful-drain half of
    /// shutdown) or `timeout` elapses. Returns `true` when idle was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.in_flight() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Warm-starts the schedule cache from [`ServeOptions::cache_file`]
    /// (missing file = cold start). Returns the number of loaded schedules.
    ///
    /// # Errors
    ///
    /// Propagates [`themis_core::ScheduleError`] read/parse failures.
    pub fn load_cache_file(&self) -> Result<usize, ThemisError> {
        match &self.options.cache_file {
            Some(path) => Ok(self.plan.schedules().load_from_file(path)?),
            None => Ok(0),
        }
    }

    /// Merge-publishes the schedule cache to [`ServeOptions::cache_file`]
    /// ([`themis_core::ScheduleCache::publish_to_file`] — concurrent
    /// publishers never lose entries). Returns the number of published
    /// schedules, or 0 when no cache file is configured.
    ///
    /// # Errors
    ///
    /// Propagates [`themis_core::ScheduleError`] lock/write failures.
    pub fn publish_cache_file(&self) -> Result<usize, ThemisError> {
        match &self.options.cache_file {
            Some(path) => Ok(self.plan.schedules().publish_to_file(path)?),
            None => Ok(0),
        }
    }

    /// Handles one request line and renders the response line (without a
    /// trailing newline). Never panics on malformed input: parse and
    /// validation failures become `status:"error"` responses.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_with(line, |_, _, _| None)
    }

    /// Like [`Service::handle_line`], with an extension hook consulted for
    /// request kinds the built-in protocol does not know (the `themis-serve`
    /// binary plugs the figure-suite runner in this way). The hook returns
    /// `None` to decline, or `Some(result)` to answer.
    pub fn handle_line_with(
        &self,
        line: &str,
        ext: impl FnOnce(&Service, &str, &Json) -> Option<Result<Json, ThemisError>>,
    ) -> String {
        let request = match Json::parse(line) {
            Ok(request) => request,
            Err(err) => return render_error(&Json::Null, &format!("malformed request: {err}")),
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let kind = match request.field("kind").and_then(Json::as_str) {
            Ok(kind) => kind.to_string(),
            Err(err) => return render_error(&id, &format!("invalid request: {err}")),
        };
        let before = self.counters();
        self.telemetry
            .counter(format!("serve.requests.{kind}"))
            .inc();
        // Bounded admission: heavy kinds are shed — never queued — beyond
        // the in-flight budget, so a client flood degrades into prompt
        // `overloaded` responses instead of unbounded latency and memory.
        let _permit = if is_heavy_kind(&kind) {
            match InFlightPermit::acquire(self) {
                Some(permit) => Some(permit),
                None => {
                    self.telemetry.counter("serve.shed").inc();
                    return render_overloaded(&id, &kind, self.options.retry_after_ms);
                }
            }
        } else {
            None
        };
        let started = Instant::now();
        // Panic isolation: a panicking handler answers a structured error on
        // this request and leaves the daemon (and every other request) alive.
        // Cell computations carry their own inner guard (see
        // `compute_isolated`) so a panicking cell also releases its
        // single-flight slot; this outer net catches everything else.
        let result = catch_unwind(AssertUnwindSafe(|| self.dispatch(&kind, &request, ext)))
            .unwrap_or_else(|payload| {
                self.telemetry.counter("serve.panics").inc();
                Err(ThemisError::Serve {
                    reason: format!("request panicked: {}", panic_message(payload.as_ref())),
                })
            });
        self.telemetry
            .histogram(format!("serve.latency_ns.{kind}"))
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match result {
            Ok(result) => {
                let delta = self.counters().delta(&before);
                Json::obj([
                    ("id", id),
                    ("status", Json::Str("ok".to_string())),
                    ("kind", Json::Str(kind)),
                    ("result", result),
                    ("cache", delta.to_json(self)),
                ])
                .render()
            }
            Err(err) if err.is_cancelled() => {
                self.telemetry.counter("serve.timeouts").inc();
                render_timeout(&id, &kind)
            }
            Err(err) => {
                self.telemetry.counter(format!("serve.errors.{kind}")).inc();
                render_error(&id, &err.to_string())
            }
        }
    }

    /// Serves requests line by line from `reader`, writing one response line
    /// per request to `writer`, until end-of-input or a `shutdown` request.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error on the reader or writer.
    pub fn serve<R: BufRead, W: Write>(&self, reader: R, writer: W) -> std::io::Result<()> {
        self.serve_with(reader, writer, |_, _, _| None)
    }

    /// Like [`Service::serve`], consulting `ext` for unknown request kinds
    /// (see [`Service::handle_line_with`]).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error on the reader or writer.
    pub fn serve_with<R: BufRead, W: Write>(
        &self,
        mut reader: R,
        mut writer: W,
        ext: impl Fn(&Service, &str, &Json) -> Option<Result<Json, ThemisError>>,
    ) -> std::io::Result<()> {
        loop {
            let response = match read_bounded_line(&mut reader, self.options.max_line_bytes)? {
                LineOutcome::Eof => break,
                LineOutcome::Oversized(len) => render_error(
                    &Json::Null,
                    &format!(
                        "request line too long: {len} bytes exceeds the {} byte limit",
                        self.options.max_line_bytes
                    ),
                ),
                LineOutcome::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.handle_line_with(&line, &ext)
                }
            };
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            if self.shutdown_requested() {
                break;
            }
        }
        Ok(())
    }

    /// Routes one parsed request to its handler.
    fn dispatch(
        &self,
        kind: &str,
        request: &Json,
        ext: impl FnOnce(&Service, &str, &Json) -> Option<Result<Json, ThemisError>>,
    ) -> Result<Json, ThemisError> {
        match kind {
            "ping" => Ok(self.resident_json()),
            "campaign" => self.handle_campaign(request),
            "stream" => self.handle_stream(request),
            "shard" => self.handle_shard(request),
            "sweep" => self.handle_sweep(request),
            "cache-stats" => Ok(self.cache_stats_json()),
            "cache-publish" => self.handle_cache_publish(request),
            "metrics" => Ok(self.handle_metrics()),
            "shutdown" => {
                self.shutdown.store(true, Ordering::Relaxed);
                Ok(Json::obj([("shutting_down", Json::Bool(true))]))
            }
            other => match ext(self, other, request) {
                Some(result) => result,
                None => Err(ThemisError::Serve {
                    reason: format!(
                        "unknown request kind `{other}` (expected ping, campaign, stream, \
                         shard, sweep, cache-stats, cache-publish, metrics, or shutdown)"
                    ),
                }),
            },
        }
    }

    /// Executes a `campaign` request: each cell through the single-flight
    /// result cache on the resident plan. Bit-identical to
    /// [`Runner::execute`] on the same specs.
    fn handle_campaign(&self, request: &Json) -> Result<Json, ThemisError> {
        let mut workspace = SimWorkspace::with_telemetry(self.telemetry.clone());
        if let Some(token) = self.deadline_token(request)? {
            workspace.set_cancel(token);
        }
        let mut results = Vec::new();
        for cell in request.field("cells")?.as_arr()? {
            let spec = RunSpec::new(
                platform_from_json(cell.field("platform")?)?,
                job_from_json(cell.field("job")?)?,
            );
            // Canonical key: re-render the parsed spec, so formatting
            // differences between clients cannot split the cache.
            let key = format!(
                "campaign:{}:{}",
                platform_to_json(&spec.platform).render(),
                job_to_json(&spec.job).render()
            );
            let value = self.compute_isolated(&key, || {
                spec.execute_planned(&self.plan, &mut workspace)
                    .map(CellValue::Campaign)
            })?;
            match value {
                CellValue::Campaign(result) => results.push(result),
                _ => unreachable!("campaign keys hold campaign results"),
            }
        }
        Ok(CampaignReport::new(results).to_json_value())
    }

    /// Executes a `stream` request; the stream analogue of
    /// [`Service::handle_campaign`].
    fn handle_stream(&self, request: &Json) -> Result<Json, ThemisError> {
        let mut workspace = SimWorkspace::with_telemetry(self.telemetry.clone());
        if let Some(token) = self.deadline_token(request)? {
            workspace.set_cancel(token);
        }
        let mut results = Vec::new();
        for cell in request.field("cells")?.as_arr()? {
            let spec = StreamSpec::new(
                platform_from_json(cell.field("platform")?)?,
                stream_job_from_json(cell.field("stream")?)?,
            );
            let key = format!(
                "stream:{}:{}",
                platform_to_json(&spec.platform).render(),
                stream_job_to_json(&spec.job).render()
            );
            let value = self.compute_isolated(&key, || {
                spec.execute_planned(&self.plan, &mut workspace)
                    .map(CellValue::Stream)
            })?;
            match value {
                CellValue::Stream(result) => results.push(result),
                _ => unreachable!("stream keys hold stream results"),
            }
        }
        Ok(StreamCampaignReport::new(results).to_json_value())
    }

    /// The request's cooperative-cancellation token: its `deadline_ms` field
    /// if present, the service's [`ServeOptions::default_deadline_ms`]
    /// otherwise, `None` when neither is configured (the common case — no
    /// token means the simulation event loops skip the deadline poll
    /// entirely).
    fn deadline_token(&self, request: &Json) -> Result<Option<CancelToken>, ThemisError> {
        let ms = match request.get("deadline_ms") {
            Some(value) => Some(value.as_f64()?),
            None => self.options.default_deadline_ms.map(|ms| ms as f64),
        };
        Ok(ms.map(|ms| CancelToken::with_timeout(Duration::from_secs_f64(ms.max(0.0) / 1000.0))))
    }

    /// Runs one cell computation through the single-flight cache with panic
    /// isolation and timeout-aware memoisation:
    ///
    /// * a panic inside the simulator becomes a structured error (counted in
    ///   `serve.panics`) that poisons **only this cell's slot** — the daemon
    ///   and every concurrent request keep running;
    /// * a cancelled (deadline-exceeded) run is *forgotten* instead of
    ///   memoised, so a later request with a saner deadline recomputes the
    ///   cell instead of replaying the timeout forever.
    fn compute_isolated(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<CellValue, ThemisError>,
    ) -> Result<CellValue, ThemisError> {
        let result = self.cells.get_or_compute(key.to_string(), || {
            match catch_unwind(AssertUnwindSafe(compute)) {
                Ok(result) => result,
                Err(payload) => {
                    self.telemetry.counter("serve.panics").inc();
                    Err(ThemisError::Serve {
                        reason: format!(
                            "cell computation panicked: {}",
                            panic_message(payload.as_ref())
                        ),
                    })
                }
            }
        });
        if let Err(err) = &result {
            if err.is_cancelled() {
                self.cells.forget(key);
            }
        }
        result
    }

    /// Runs an extension-hook computation through the resident single-flight
    /// cell cache with the same guarantees as built-in cells: identical keys
    /// — sequential or racing across threads — compute once, a panic poisons
    /// only this key's slot (structured error, `serve.panics` counted), and a
    /// cancelled run is forgotten instead of memoised. For use from the
    /// `ext` hook of [`Service::handle_line_with`]; prefix keys with the
    /// extension's kind to stay clear of the built-in `campaign:`/`stream:`
    /// namespaces.
    ///
    /// # Errors
    ///
    /// Returns the computation's own error (memoised, so a deterministic
    /// failure fails identically on every repeat), or a
    /// [`ThemisError::Serve`] if `key` collides with a non-extension cell.
    pub fn compute_cell(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<Json, ThemisError>,
    ) -> Result<Json, ThemisError> {
        match self.compute_isolated(key, || compute().map(CellValue::Ext))? {
            CellValue::Ext(value) => Ok(value),
            _ => Err(ThemisError::Serve {
                reason: format!("cell key `{key}` already holds a built-in cell result"),
            }),
        }
    }

    /// Executes a `shard` request against the resident plan cache.
    fn handle_shard(&self, request: &Json) -> Result<Json, ThemisError> {
        let spec = ShardSpec::from_json(&request.field("spec")?.render())?;
        let report = spec.execute_with_cache(&Runner::sequential(), &self.plan)?;
        Ok(Json::parse(&report.to_json())?)
    }

    /// Executes a `sweep` request: plans shards over the request's cells and
    /// drives them through the multi-process [`Orchestrator`].
    fn handle_sweep(&self, request: &Json) -> Result<Json, ThemisError> {
        let worker = self
            .options
            .worker
            .clone()
            .ok_or_else(|| ThemisError::Serve {
                reason: "sweep requests need a configured shard-worker binary \
                         (start themis-serve with --worker)"
                    .to_string(),
            })?;
        let mut options = OrchestratorOptions::new(worker);
        options.work_dir = self.options.work_dir.clone();
        options.cache_file = self.options.cache_file.clone();
        options.threads_per_worker = self.options.worker_threads;
        if let Some(shards) = request.get("shards") {
            options.shards = shards.as_usize()?;
        }
        if let Some(strategy) = request.get("strategy") {
            options.strategy = match strategy.as_str()? {
                "round-robin" => ShardStrategy::RoundRobin,
                "cost-balanced" => ShardStrategy::CostBalanced,
                other => {
                    return Err(ThemisError::Serve {
                        reason: format!("unknown shard strategy `{other}`"),
                    })
                }
            };
        }
        if let Some(attempts) = request.get("max_attempts") {
            options.max_attempts = attempts.as_usize()?.max(1) as u32;
        }
        if let Some(timeout) = request.get("stall_timeout_ms") {
            options.stall_timeout = Duration::from_millis(timeout.as_f64()? as u64);
        }
        if let Some(id) = request.get("sweep_id") {
            options.sweep_id = Some(id.as_str()?.to_string());
        }
        if let Some(hook) = request.get("fail_first_attempt") {
            for entry in hook.as_arr()? {
                options
                    .fail_first_attempt
                    .push((entry.field("shard")?.as_usize()?, {
                        match entry.get("after_cells") {
                            Some(cells) => cells.as_usize()?,
                            None => 0,
                        }
                    }));
            }
        }
        let orchestrator = Orchestrator::new(options);
        let entries = request.field("entries")?.as_arr()?;
        let outcome = match request.field("cells")?.as_str()? {
            "campaign" => {
                let specs = entries
                    .iter()
                    .map(|cell| {
                        Ok(RunSpec::new(
                            platform_from_json(cell.field("platform")?)?,
                            job_from_json(cell.field("job")?)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, ThemisError>>()?;
                orchestrator.run_campaign(&specs)?
            }
            "stream" => {
                let specs = entries
                    .iter()
                    .map(|cell| {
                        Ok(StreamSpec::new(
                            platform_from_json(cell.field("platform")?)?,
                            stream_job_from_json(cell.field("stream")?)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, ThemisError>>()?;
                orchestrator.run_streams(&specs)?
            }
            other => {
                return Err(ThemisError::Serve {
                    reason: format!("unknown sweep cell kind `{other}`"),
                })
            }
        };
        Ok(Json::obj([
            ("merged", Json::parse(&outcome.merged.to_json())?),
            (
                "attempts",
                Json::Arr(
                    outcome
                        .attempts
                        .iter()
                        .map(|&a| Json::Num(a as f64))
                        .collect(),
                ),
            ),
            ("retries", Json::Num(outcome.retries() as f64)),
            (
                "resumed_shards",
                Json::Arr(
                    outcome
                        .resumed_shards
                        .iter()
                        .map(|&shard| Json::Num(shard as f64))
                        .collect(),
                ),
            ),
            (
                "failures",
                Json::Arr(
                    outcome
                        .failures
                        .iter()
                        .map(|failure| {
                            Json::obj([
                                ("shard", Json::Num(failure.shard as f64)),
                                ("attempt", Json::Num(failure.attempt as f64)),
                                ("kind", Json::Str(failure.kind.as_str().to_string())),
                                ("reason", Json::Str(failure.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shards",
                Json::Arr(
                    outcome
                        .shard_perf
                        .iter()
                        .map(|perf| match perf {
                            Some(perf) => perf.to_json(),
                            None => Json::Null,
                        })
                        .collect(),
                ),
            ),
        ]))
    }

    /// Handles `cache-publish`: merge-publishes the schedule cache to the
    /// request's `path` or the configured cache file.
    fn handle_cache_publish(&self, request: &Json) -> Result<Json, ThemisError> {
        let published = match request.get("path") {
            Some(path) => self
                .plan
                .schedules()
                .publish_to_file(std::path::Path::new(path.as_str()?))?,
            None => {
                if self.options.cache_file.is_none() {
                    return Err(ThemisError::Serve {
                        reason: "cache-publish needs a `path` or a configured --cache file"
                            .to_string(),
                    });
                }
                self.publish_cache_file()?
            }
        };
        Ok(Json::obj([("published", Json::Num(published as f64))]))
    }

    /// Snapshot of all cumulative counters, for per-request deltas: one
    /// [`CacheStats`] per memo layer.
    fn counters(&self) -> CacheCounters {
        CacheCounters {
            cells: self.cells.stats(),
            schedules: self.plan.schedules().stats(),
            cost_tables: self.plan.cost_tables().stats(),
        }
    }

    /// The `metrics` result: the full telemetry snapshot (JSON and
    /// Prometheus text exposition) plus the cache layers' cumulative hit
    /// rates.
    fn handle_metrics(&self) -> Json {
        let snapshot = self.telemetry.snapshot();
        // Corruption quarantines and lock takeovers happen inside
        // `themis_core`, which only sees the process-wide registry — surface
        // them here so one `metrics` request covers both layers.
        let global = themis_core::telemetry::global().snapshot();
        let totals = self.counters();
        Json::obj([
            ("snapshot", snapshot.to_json()),
            ("prometheus", Json::Str(snapshot.to_prometheus())),
            (
                "global",
                Json::obj([
                    (
                        "cache.corrupt_quarantined",
                        Json::Num(global.counter("cache.corrupt_quarantined") as f64),
                    ),
                    (
                        "cache.lock_takeover",
                        Json::Num(global.counter("cache.lock_takeover") as f64),
                    ),
                ]),
            ),
            ("caches", self.cache_stats_json()),
            (
                "hit_rates",
                Json::obj([
                    ("cells", Json::Num(totals.cells.hit_rate())),
                    ("schedules", Json::Num(totals.schedules.hit_rate())),
                    ("cost_tables", Json::Num(totals.cost_tables.hit_rate())),
                ]),
            ),
        ])
    }

    /// The `ping` result: resident cache sizes.
    fn resident_json(&self) -> Json {
        Json::obj([
            ("pong", Json::Bool(true)),
            ("resident", self.resident_sizes_json()),
        ])
    }

    /// Resident entry counts per cache pool.
    fn resident_sizes_json(&self) -> Json {
        Json::obj([
            ("cells", Json::Num(self.cells.len() as f64)),
            ("schedules", Json::Num(self.plan.schedules().len() as f64)),
            (
                "cost_tables",
                Json::Num(self.plan.cost_tables().len() as f64),
            ),
        ])
    }

    /// The `cache-stats` result: cumulative counters plus resident sizes.
    fn cache_stats_json(&self) -> Json {
        let totals = self.counters();
        Json::obj([
            ("cells", totals.cells.to_json()),
            ("schedules", totals.schedules.to_json()),
            ("cost_tables", totals.cost_tables.to_json()),
            ("resident", self.resident_sizes_json()),
        ])
    }
}

/// Result of one bounded line read.
enum LineOutcome {
    /// End of input with nothing pending.
    Eof,
    /// A complete line within the cap (without its newline).
    Line(String),
    /// The line exceeded the cap; it was consumed but **not** buffered. The
    /// payload is the line's total length in bytes.
    Oversized(usize),
}

/// Reads one `\n`-terminated line from `reader`, buffering at most `cap`
/// bytes. A longer line is drained chunk by chunk through the reader's
/// internal buffer — memory use stays O(cap) no matter how long the client's
/// line is — and reported as [`LineOutcome::Oversized`] so the serve loop can
/// answer with a structured error and keep the connection in sync.
fn read_bounded_line<R: BufRead>(reader: &mut R, cap: usize) -> std::io::Result<LineOutcome> {
    let mut buf: Vec<u8> = Vec::new();
    let mut total = 0usize;
    let mut oversized = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: flush whatever an unterminated final line accumulated.
            return Ok(if oversized {
                LineOutcome::Oversized(total)
            } else if total == 0 {
                LineOutcome::Eof
            } else {
                LineOutcome::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let (line_bytes, consumed, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, pos + 1, true),
            None => (chunk.len(), chunk.len(), false),
        };
        total += line_bytes;
        if !oversized {
            if total > cap {
                oversized = true;
                buf = Vec::new();
            } else {
                buf.extend_from_slice(&chunk[..line_bytes]);
            }
        }
        reader.consume(consumed);
        if done {
            return Ok(if oversized {
                LineOutcome::Oversized(total)
            } else {
                LineOutcome::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
    }
}

/// Renders a `status:"error"` response line.
fn render_error(id: &Json, reason: &str) -> String {
    Json::obj([
        ("id", id.clone()),
        ("status", Json::Str("error".to_string())),
        ("error", Json::Str(reason.to_string())),
    ])
    .render()
}

/// Renders a `status:"overloaded"` load-shed response with its retry hint.
fn render_overloaded(id: &Json, kind: &str, retry_after_ms: u64) -> String {
    Json::obj([
        ("id", id.clone()),
        ("status", Json::Str("overloaded".to_string())),
        ("kind", Json::Str(kind.to_string())),
        ("retry_after_ms", Json::Num(retry_after_ms as f64)),
        (
            "error",
            Json::Str("in-flight request budget exhausted; retry later".to_string()),
        ),
    ])
    .render()
}

/// Renders a `status:"timeout"` deadline-exceeded response.
fn render_timeout(id: &Json, kind: &str) -> String {
    Json::obj([
        ("id", id.clone()),
        ("status", Json::Str("timeout".to_string())),
        ("kind", Json::Str(kind.to_string())),
        (
            "error",
            Json::Str("request deadline exceeded; the simulation was cancelled".to_string()),
        ),
    ])
    .render()
}

/// Heavy kinds run simulations or spawn processes and are subject to
/// admission control; light kinds (cheap introspection and shutdown) always
/// pass so a saturated daemon stays observable and stoppable. Unknown kinds
/// count as heavy — extension hooks (e.g. the figure-suite runner) do real
/// work too.
fn is_heavy_kind(kind: &str) -> bool {
    !matches!(
        kind,
        "ping" | "cache-stats" | "cache-publish" | "metrics" | "shutdown"
    )
}

/// Best-effort panic payload message (panics carry `&str` or `String` in
/// practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// RAII admission slot: acquired before dispatching a heavy request,
/// released (and the `serve.in_flight` gauge updated) on drop — error paths
/// and panics included.
struct InFlightPermit<'a> {
    service: &'a Service,
}

impl<'a> InFlightPermit<'a> {
    /// Tries to take one admission slot. Returns `None` when the budget
    /// ([`ServeOptions::max_in_flight`] > 0) is exhausted.
    fn acquire(service: &'a Service) -> Option<Self> {
        let cap = service.options.max_in_flight;
        let admitted = service
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |current| {
                if cap > 0 && current >= cap {
                    None
                } else {
                    Some(current + 1)
                }
            })
            .is_ok();
        if !admitted {
            return None;
        }
        service
            .telemetry
            .gauge("serve.in_flight")
            .set(service.in_flight.load(Ordering::Relaxed) as u64);
        Some(InFlightPermit { service })
    }
}

impl Drop for InFlightPermit<'_> {
    fn drop(&mut self) {
        let now = self.service.in_flight.fetch_sub(1, Ordering::AcqRel) - 1;
        self.service
            .telemetry
            .gauge("serve.in_flight")
            .set(now as u64);
    }
}

/// Cumulative cache counters at one instant — one [`CacheStats`] per memo
/// layer, so deltas and serialization reuse the shared view instead of
/// hand-rolled per-field subtraction.
#[derive(Debug, Clone, Copy)]
struct CacheCounters {
    cells: CacheStats,
    schedules: CacheStats,
    cost_tables: CacheStats,
}

impl CacheCounters {
    fn delta(&self, before: &CacheCounters) -> CacheCounters {
        CacheCounters {
            cells: self.cells.delta(&before.cells),
            schedules: self.schedules.delta(&before.schedules),
            cost_tables: self.cost_tables.delta(&before.cost_tables),
        }
    }

    /// The response `cache` block: this request's deltas plus resident sizes.
    fn to_json(self, service: &Service) -> Json {
        Json::obj([
            ("cells", self.cells.to_json()),
            ("schedules", self.schedules.to_json()),
            ("cost_tables", self.cost_tables.to_json()),
            ("resident_cells", Json::Num(service.resident_cells() as f64)),
        ])
    }
}

/// One memoised cell result.
#[derive(Debug, Clone)]
enum CellValue {
    /// A collective-campaign cell.
    Campaign(RunResult),
    /// A stream-campaign cell.
    Stream(StreamRunResult),
    /// An extension-hook cell ([`Service::compute_cell`]).
    Ext(Json),
}

/// State of one cell slot: being computed by its first requester, or done.
#[derive(Debug)]
enum SlotState {
    /// The inserting request is computing; others wait on the condvar.
    InFlight,
    /// Finished (errors are memoised as display strings — deterministic
    /// failures fail identically on every repeat).
    Done(Result<CellValue, String>),
}

/// One single-flight slot.
#[derive(Debug)]
struct CellSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// Insertion-ordered slot map (FIFO eviction beyond the capacity).
#[derive(Debug, Default)]
struct SlotMap {
    map: HashMap<String, Arc<CellSlot>>,
    order: VecDeque<String>,
}

/// The single-flight result cache: identical cells across concurrent
/// in-flight requests are computed once; repeats are served without touching
/// the simulator.
#[derive(Debug)]
struct CellCache {
    slots: Mutex<SlotMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    cap: usize,
}

impl CellCache {
    fn new(cap: usize) -> Self {
        CellCache {
            slots: Mutex::new(SlotMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cap: cap.max(1),
        }
    }

    fn len(&self) -> usize {
        self.slots
            .lock()
            .expect("cell cache lock is never poisoned")
            .map
            .len()
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cumulative hit/miss counters as the unified [`CacheStats`] view.
    fn stats(&self) -> CacheStats {
        CacheStats::new(self.hits(), self.misses())
    }

    /// Returns the memoised value for `key`, or runs `compute` (outside every
    /// lock) and memoises the outcome. Concurrent callers with the same key
    /// wait for the first computation instead of re-running it; their lookups
    /// count as hits.
    fn get_or_compute(
        &self,
        key: String,
        compute: impl FnOnce() -> Result<CellValue, ThemisError>,
    ) -> Result<CellValue, ThemisError> {
        let (slot, owner) = {
            let mut slots = self
                .slots
                .lock()
                .expect("cell cache lock is never poisoned");
            match slots.map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(CellSlot {
                        state: Mutex::new(SlotState::InFlight),
                        ready: Condvar::new(),
                    });
                    slots.map.insert(key.clone(), Arc::clone(&slot));
                    slots.order.push_back(key);
                    // FIFO eviction: waiters hold their own Arc to an evicted
                    // slot, so dropping the map entry only forgets the memo.
                    while slots.order.len() > self.cap {
                        let oldest = slots.order.pop_front().expect("len > cap >= 1");
                        slots.map.remove(&oldest);
                    }
                    (slot, true)
                }
            }
        };
        if owner {
            self.misses.fetch_add(1, Ordering::Relaxed);
            // Even if `compute` unwinds, the slot must reach `Done` —
            // otherwise every concurrent waiter on this cell blocks forever
            // on a condvar nobody will ever signal.
            let mut completion = SlotCompletionGuard {
                slot: &slot,
                completed: false,
            };
            let result = compute();
            let memo = match &result {
                Ok(value) => Ok(value.clone()),
                Err(err) => Err(err.to_string()),
            };
            *slot.state.lock().expect("cell slot lock is never poisoned") = SlotState::Done(memo);
            completion.completed = true;
            slot.ready.notify_all();
            result
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let mut state = slot.state.lock().expect("cell slot lock is never poisoned");
            while matches!(*state, SlotState::InFlight) {
                state = slot
                    .ready
                    .wait(state)
                    .expect("cell slot lock is never poisoned");
            }
            match &*state {
                SlotState::Done(Ok(value)) => Ok(value.clone()),
                SlotState::Done(Err(reason)) => Err(ThemisError::Serve {
                    reason: reason.clone(),
                }),
                SlotState::InFlight => unreachable!("the wait loop exits only on Done"),
            }
        }
    }

    /// Drops the memo for `key` (waiters already holding the slot's `Arc`
    /// still observe its final state). Used for request-scoped failures —
    /// deadline timeouts — that must not poison the cell for later requests.
    fn forget(&self, key: &str) {
        let mut slots = self
            .slots
            .lock()
            .expect("cell cache lock is never poisoned");
        if slots.map.remove(key).is_some() {
            slots.order.retain(|entry| entry != key);
        }
    }
}

/// Backstop ensuring an owner that unwinds mid-computation still completes
/// its slot: waiters get a structured error instead of a hang.
struct SlotCompletionGuard<'a> {
    slot: &'a CellSlot,
    completed: bool,
}

impl Drop for SlotCompletionGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            *self
                .slot
                .state
                .lock()
                .expect("cell slot lock is never poisoned") = SlotState::Done(Err(
                "cell computation panicked before completing".to_string(),
            ));
            self.slot.ready.notify_all();
        }
    }
}

/// Serializes campaign cells (the `cells` payload of `campaign` and the
/// `entries` payload of a campaign `sweep`) for a request line.
pub fn campaign_cells_to_json(specs: &[RunSpec]) -> Json {
    Json::Arr(
        specs
            .iter()
            .map(|spec| {
                Json::obj([
                    ("platform", platform_to_json(&spec.platform)),
                    ("job", job_to_json(&spec.job)),
                ])
            })
            .collect(),
    )
}

/// Serializes stream cells (the `cells` payload of `stream` and the
/// `entries` payload of a stream `sweep`) for a request line.
pub fn stream_cells_to_json(specs: &[StreamSpec]) -> Json {
    Json::Arr(
        specs
            .iter()
            .map(|spec| {
                Json::obj([
                    ("platform", platform_to_json(&spec.platform)),
                    ("stream", stream_job_to_json(&spec.job)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::job::Job;
    use crate::api::platform::Platform;
    use themis_core::SchedulerKind;
    use themis_net::presets::PresetTopology;

    fn specs() -> Vec<RunSpec> {
        let platform = Platform::preset(PresetTopology::Sw2d);
        SchedulerKind::all()
            .into_iter()
            .map(|kind| {
                RunSpec::new(
                    platform.clone(),
                    Job::all_reduce_mib(16.0).chunks(4).scheduler(kind),
                )
            })
            .collect()
    }

    fn campaign_request(id: usize, specs: &[RunSpec]) -> String {
        Json::obj([
            ("id", Json::Num(id as f64)),
            ("kind", Json::Str("campaign".to_string())),
            ("cells", campaign_cells_to_json(specs)),
        ])
        .render()
    }

    #[test]
    fn second_identical_request_is_served_from_the_cell_cache() {
        let service = Service::default();
        let specs = specs();
        let first = Json::parse(&service.handle_line(&campaign_request(1, &specs))).unwrap();
        let second = Json::parse(&service.handle_line(&campaign_request(2, &specs))).unwrap();
        assert_eq!(first.field("status").unwrap().as_str().unwrap(), "ok");
        // Bit-identical reports.
        assert_eq!(
            first.field("result").unwrap(),
            second.field("result").unwrap()
        );
        // The second request hit the resident cache on every cell.
        let cells = second.field("cache").unwrap().field("cells").unwrap();
        assert_eq!(
            cells.field("hits").unwrap().as_usize().unwrap(),
            specs.len()
        );
        assert_eq!(cells.field("misses").unwrap().as_usize().unwrap(), 0);
    }

    #[test]
    fn single_flight_cell_cache_deduplicates_and_evicts() {
        let cache = CellCache::new(2);
        let value = || {
            Ok(CellValue::Campaign(RunResult {
                config: crate::api::report::RunConfig {
                    topology: "t".to_string(),
                    scheduler: SchedulerKind::Baseline,
                    collective: themis_collectives::CollectiveKind::AllReduce,
                    size: themis_net::DataSize::from_mib(1.0),
                    chunks: 1,
                },
                report: themis_sim::SimReport {
                    scheduler_name: "s".to_string(),
                    topology_name: "t".to_string(),
                    total_time_ns: 0.0,
                    activity_window_ns: 1.0,
                    dims: Vec::new(),
                    op_log: Vec::new(),
                },
            }))
        };
        cache.get_or_compute("a".to_string(), value).unwrap();
        cache.get_or_compute("a".to_string(), value).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Capacity 2: inserting c then d evicts the oldest keys.
        cache.get_or_compute("b".to_string(), value).unwrap();
        cache.get_or_compute("c".to_string(), value).unwrap();
        assert_eq!(cache.len(), 2);
        // Errors are memoised too.
        let err = cache.get_or_compute("boom".to_string(), || {
            Err(ThemisError::Serve {
                reason: "exploded".to_string(),
            })
        });
        assert!(err.is_err());
    }

    #[test]
    fn bounded_reader_handles_exact_caps_and_unterminated_tails() {
        let mut reader = std::io::Cursor::new(b"abcd\nefgh".to_vec());
        match read_bounded_line(&mut reader, 4).unwrap() {
            LineOutcome::Line(line) => assert_eq!(line, "abcd"),
            _ => panic!("a line exactly at the cap must pass"),
        }
        // The unterminated final line is still delivered at EOF.
        match read_bounded_line(&mut reader, 4).unwrap() {
            LineOutcome::Line(line) => assert_eq!(line, "efgh"),
            _ => panic!("unterminated tail must be delivered"),
        }
        assert!(matches!(
            read_bounded_line(&mut reader, 4).unwrap(),
            LineOutcome::Eof
        ));
    }

    #[test]
    fn oversized_request_lines_answer_a_structured_error_and_keep_serving() {
        let options = ServeOptions {
            max_line_bytes: 128,
            ..ServeOptions::default()
        };
        let service = Service::new(options);
        let long = format!(
            "{{\"id\":1,\"kind\":\"ping\",\"pad\":\"{}\"}}\n",
            "x".repeat(4096)
        );
        let input = format!("{long}{{\"id\":2,\"kind\":\"ping\"}}\n");
        let mut out = Vec::new();
        service
            .serve(std::io::Cursor::new(input.into_bytes()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut lines = text.lines();
        let first = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(first.field("status").unwrap().as_str().unwrap(), "error");
        let reason = first.field("error").unwrap().as_str().unwrap().to_string();
        assert!(reason.contains("too long"), "{reason}");
        // The oversized line was drained, so the next request still parses.
        let second = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(second.field("status").unwrap().as_str().unwrap(), "ok");
        assert!(lines.next().is_none());
    }
}
