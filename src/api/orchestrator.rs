//! Multi-process sweep orchestration: spawn `shard-worker` processes, watch
//! their heartbeats, retry failures with bounded backoff, and merge the
//! partial reports bit-identically to an unsharded run.
//!
//! The sharding layer ([`crate::api::shard`]) gives every worker process a
//! self-contained [`ShardSpec`]; this module is the driver that used to live
//! in shell scripts. An [`Orchestrator`]:
//!
//! 1. plans shards over the expanded cell matrix ([`ShardStrategy`]),
//! 2. writes one spec file per shard and spawns one `shard-worker run`
//!    process per shard (`--progress` heartbeat file, `--out` partial
//!    report, optionally `--cache` pointed at a shared schedule-cache file),
//! 3. polls the children: a non-zero exit (the worker signals per-shard
//!    execution failures with exit code 3) or a heartbeat that stops
//!    changing for [`OrchestratorOptions::stall_timeout`] fails the attempt,
//! 4. retries failed attempts with bounded exponential backoff up to
//!    [`OrchestratorOptions::max_attempts`] per shard,
//! 5. merges the partial reports ([`crate::api::shard::merge_reports`]) into
//!    a [`MergedReport`] whose campaign/stream report is **bit-identical** to
//!    [`crate::api::Runner::execute`] / `execute_streams` on the same cells.
//!
//! Failure injection for tests and CI rides the worker's deterministic
//! `--fail-after N` hook via [`OrchestratorOptions::fail_first_attempt`].

use crate::api::runner::RunSpec;
use crate::api::shard::{merge_reports, MergedReport, ShardReport, ShardSpec, ShardStrategy};
use crate::api::stream::StreamSpec;
use crate::error::ThemisError;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use themis_core::durable::{self, VerifiedRead};
use themis_core::json::Json;
use themis_core::telemetry::{log_event, LogLevel};

/// Distinguishes successive sweeps of one process so their scratch
/// directories never collide.
static SWEEP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Configuration of an [`Orchestrator`].
#[derive(Debug, Clone, PartialEq)]
pub struct OrchestratorOptions {
    /// Path of the `shard-worker` binary to spawn.
    pub worker: PathBuf,
    /// Number of worker processes (= shards) per sweep.
    pub shards: usize,
    /// How cells are distributed over shards.
    pub strategy: ShardStrategy,
    /// Total attempts allowed per shard (first run + retries). At least 1.
    pub max_attempts: u32,
    /// An attempt whose heartbeat file stops changing for this long is
    /// killed and counted as a failure.
    pub stall_timeout: Duration,
    /// Child-poll period of the supervision loop.
    pub poll_interval: Duration,
    /// First retry delay; doubled per retry up to [`Self::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound of the exponential retry backoff.
    pub backoff_cap: Duration,
    /// Directory for per-sweep scratch files (spec, partial report, and
    /// heartbeat per shard). Each sweep uses a fresh subdirectory, removed
    /// on success unless [`Self::keep_files`] is set.
    pub work_dir: PathBuf,
    /// Schedule-cache file handed to every worker (`--cache`): workers
    /// warm-start from it and merge-publish back into it, so schedules
    /// survive across processes and sweeps.
    pub cache_file: Option<PathBuf>,
    /// Worker threads per shard process (`--threads`).
    pub threads_per_worker: usize,
    /// Deterministic failure injection: `(shard_index, after_cells)` pairs.
    /// The **first** attempt of each listed shard runs with
    /// `--fail-after after_cells`, so it aborts (exit code 3) after that many
    /// cells and exercises the retry path; retries run clean.
    pub fail_first_attempt: Vec<(usize, usize)>,
    /// Keep the sweep's scratch directory after a successful merge.
    pub keep_files: bool,
    /// Stable sweep identity for crash-resumable sweeps. When set, the
    /// scratch directory is the deterministic `work_dir/sweep-<id>` instead
    /// of a per-process unique path, and before launching any worker the
    /// orchestrator checks each shard's partial-report path: a readable
    /// report whose shard index, shard count, cell kind and global cell
    /// indices all match the spec is adopted as-is (marked done with
    /// zero attempts), so a sweep killed mid-run resumes without
    /// re-simulating completed shards. IDs may contain only ASCII
    /// alphanumerics, `-`, `_` and `.`.
    pub sweep_id: Option<String>,
}

impl OrchestratorOptions {
    /// Defaults: 2 shards, cost-balanced planning, 3 attempts per shard,
    /// 120 s stall timeout, 25 ms polling, 50 ms → 2 s exponential backoff,
    /// scratch under `serve-work/`, no shared cache file, 1 thread per
    /// worker, no failure injection.
    pub fn new(worker: impl Into<PathBuf>) -> Self {
        OrchestratorOptions {
            worker: worker.into(),
            shards: 2,
            strategy: ShardStrategy::CostBalanced,
            max_attempts: 3,
            stall_timeout: Duration::from_secs(120),
            poll_interval: Duration::from_millis(25),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            work_dir: PathBuf::from("serve-work"),
            cache_file: None,
            threads_per_worker: 1,
            fail_first_attempt: Vec::new(),
            keep_files: false,
            sweep_id: None,
        }
    }

    /// Sets a stable sweep identity (see [`Self::sweep_id`]).
    #[must_use]
    pub fn with_sweep_id(mut self, id: impl Into<String>) -> Self {
        self.sweep_id = Some(id.into());
        self
    }
}

/// The outcome of an orchestrated sweep: the merged report plus the
/// supervision history.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The merged report, bit-identical to the unsharded execution.
    pub merged: MergedReport,
    /// Attempts launched per shard, in shard order (1 = first try worked).
    pub attempts: Vec<u32>,
    /// Per-shard throughput parsed from each worker's final heartbeat, in
    /// shard order. `None` for shards whose heartbeat file was missing or
    /// predates the telemetry-carrying format.
    pub shard_perf: Vec<Option<ShardPerf>>,
    /// Shards adopted from valid on-disk partial reports instead of being
    /// re-simulated (ascending). Non-empty only for sweeps resumed under a
    /// stable [`OrchestratorOptions::sweep_id`].
    pub resumed_shards: Vec<usize>,
    /// Every failed attempt observed during supervision, grouped by shard
    /// in shard order (detection order within a shard). Successful sweeps
    /// list the attempts that were retried along the way.
    pub failures: Vec<AttemptFailure>,
}

impl SweepOutcome {
    /// Total number of retried (i.e. failed) attempts across all shards.
    pub fn retries(&self) -> u32 {
        self.attempts.iter().sum::<u32>()
            - self
                .attempts
                .iter()
                .filter(|&&attempts| attempts > 0)
                .count() as u32
    }
}

/// Classification of one failed worker attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The worker never wrote a first heartbeat within the stall timeout —
    /// it hung (or died silently) before reaching its main loop.
    SpawnTimeout,
    /// The worker heartbeated at least once, then its heartbeat stopped
    /// changing for the stall timeout.
    Stall,
    /// The worker exited with a non-zero status or was killed by a signal.
    WorkerExit,
    /// The worker exited cleanly but left a missing or unreadable report,
    /// or the supervisor could not poll it.
    BadReport,
}

impl FailureKind {
    /// The stable string used in structured log events and JSONL responses.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::SpawnTimeout => "spawn-timeout",
            FailureKind::Stall => "stall",
            FailureKind::WorkerExit => "worker-exit",
            FailureKind::BadReport => "bad-report",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One failed attempt in a sweep's supervision history.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptFailure {
    /// The shard whose attempt failed.
    pub shard: usize,
    /// The 1-based attempt number that failed.
    pub attempt: u32,
    /// What went wrong, coarsely.
    pub kind: FailureKind,
    /// Human-readable failure detail.
    pub reason: String,
}

/// One worker's throughput, as reported by its final heartbeat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPerf {
    /// Cells the worker completed.
    pub cells: usize,
    /// Wall-clock milliseconds from the worker's start to its last heartbeat.
    pub elapsed_ms: u64,
}

impl ShardPerf {
    /// The worker's throughput in campaign cells per second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.elapsed_ms == 0 {
            return self.cells as f64 * 1000.0;
        }
        self.cells as f64 * 1000.0 / self.elapsed_ms as f64
    }

    /// Renders the per-shard summary block of the sweep response.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cells", Json::Num(self.cells as f64)),
            ("elapsed_ms", Json::Num(self.elapsed_ms as f64)),
            ("cells_per_sec", Json::Num(self.cells_per_sec())),
        ])
    }

    /// Parses a worker's JSON heartbeat line (`{"done":..,"total":..,
    /// "elapsed_ms":..}`); returns `None` for the legacy `done/total` text
    /// format or unreadable content.
    pub fn from_heartbeat(text: &str) -> Option<ShardPerf> {
        let json = Json::parse(text.trim()).ok()?;
        Some(ShardPerf {
            cells: json.get("done")?.as_usize().ok()?,
            elapsed_ms: json.get("elapsed_ms")?.as_f64().ok()? as u64,
        })
    }
}

/// Supervises one multi-process sweep; see the [module docs](self).
///
/// ```no_run
/// use themis::api::orchestrator::{Orchestrator, OrchestratorOptions};
/// use themis::prelude::*;
///
/// # fn main() -> Result<(), ThemisError> {
/// let mut options = OrchestratorOptions::new("target/release/shard-worker");
/// options.shards = 4;
/// let specs = vec![RunSpec::new(
///     Platform::preset(PresetTopology::Sw2d),
///     Job::all_reduce_mib(64.0).chunks(8).scheduler(SchedulerKind::ThemisScf),
/// )];
/// let outcome = Orchestrator::new(options).run_campaign(&specs)?;
/// assert_eq!(outcome.merged.campaign().unwrap().results().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Orchestrator {
    options: OrchestratorOptions,
}

/// One supervised shard.
struct Task {
    index: usize,
    spec_path: PathBuf,
    out_path: PathBuf,
    progress_path: PathBuf,
    /// Attempts launched so far (0 for shards resumed from disk).
    attempts: u32,
    /// Throughput parsed from the final heartbeat of the successful attempt.
    perf: Option<ShardPerf>,
    /// `true` if the shard's report was adopted from a valid on-disk partial
    /// instead of being executed by this sweep.
    resumed: bool,
    /// Failed attempts of this shard, in detection order.
    failures: Vec<AttemptFailure>,
    state: TaskState,
}

/// Kill-on-drop wrapper around a spawned worker process. Whenever a
/// `Running` state is dropped — orchestrator error return, caller panic
/// unwinding through [`Orchestrator::run_shards`], or a plain retry
/// replacing the state — the child is killed and reaped instead of being
/// leaked as an orphan. Killing an already-exited child is a no-op.
struct WorkerGuard(Child);

impl WorkerGuard {
    fn try_wait(&mut self) -> std::io::Result<Option<ExitStatus>> {
        self.0.try_wait()
    }

    fn kill_and_wait(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }

    #[cfg(test)]
    fn id(&self) -> u32 {
        self.0.id()
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.kill_and_wait();
    }
}

/// Supervision state of one shard.
enum TaskState {
    /// Not running; launch once `until` passes (backoff between retries).
    Waiting {
        /// Earliest launch instant.
        until: Instant,
    },
    /// A worker process is executing the shard.
    Running {
        /// The spawned worker, reaped on drop.
        child: WorkerGuard,
        /// Last observed heartbeat-file content.
        last_progress: String,
        /// When the heartbeat last changed (or the process launched).
        last_change: Instant,
        /// `true` once any heartbeat content has been observed this attempt;
        /// separates spawn timeouts from mid-run stalls.
        saw_heartbeat: bool,
    },
    /// The shard's partial report has been collected.
    Done(Box<ShardReport>),
}

/// Outcome of polling one task, applied after the state borrow ends.
enum Step {
    /// Nothing to do this tick.
    Idle,
    /// A waiting task's backoff has elapsed.
    Launch,
    /// The worker exited cleanly and its report parsed.
    Finish(Box<ShardReport>),
    /// The attempt failed (classified exit, timeout, or unreadable report).
    Retry(FailureKind, String),
}

impl Orchestrator {
    /// Creates an orchestrator.
    pub fn new(options: OrchestratorOptions) -> Self {
        Orchestrator { options }
    }

    /// The orchestrator's configuration.
    pub fn options(&self) -> &OrchestratorOptions {
        &self.options
    }

    /// Plans shards over a collective-campaign matrix and runs the sweep.
    /// The merged campaign report is bit-identical to
    /// [`crate::api::Runner::execute`] on `specs`.
    ///
    /// # Errors
    ///
    /// See [`Orchestrator::run_shards`].
    pub fn run_campaign(&self, specs: &[RunSpec]) -> Result<SweepOutcome, ThemisError> {
        let plan = self.options.strategy.plan(specs, self.options.shards);
        self.run_shards(&ShardSpec::campaign_shards(specs, &plan)?)
    }

    /// Plans shards over a stream-campaign matrix and runs the sweep. The
    /// merged stream report is bit-identical to
    /// [`crate::api::Runner::execute_streams`] on `specs`.
    ///
    /// # Errors
    ///
    /// See [`Orchestrator::run_shards`].
    pub fn run_streams(&self, specs: &[StreamSpec]) -> Result<SweepOutcome, ThemisError> {
        let plan = self.options.strategy.plan(specs, self.options.shards);
        self.run_shards(&ShardSpec::stream_shards(specs, &plan)?)
    }

    /// Runs pre-planned shards, one worker process per shard, and merges
    /// their reports.
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Serve`] when the worker binary cannot be
    /// spawned, when any shard exhausts [`OrchestratorOptions::max_attempts`],
    /// or on scratch-file I/O failures. Any still-running workers are killed
    /// before the error propagates.
    pub fn run_shards(&self, shards: &[ShardSpec]) -> Result<SweepOutcome, ThemisError> {
        if shards.is_empty() {
            return Err(ThemisError::Serve {
                reason: "cannot orchestrate an empty shard list".to_string(),
            });
        }
        let run_dir = self.options.work_dir.join(match &self.options.sweep_id {
            Some(id) => {
                if id.is_empty()
                    || !id
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
                {
                    return Err(ThemisError::Serve {
                        reason: format!(
                            "invalid sweep id `{id}`: use ASCII alphanumerics, `-`, `_`, `.`"
                        ),
                    });
                }
                format!("sweep-{id}")
            }
            None => format!(
                "sweep-{}-{}",
                std::process::id(),
                SWEEP_COUNTER.fetch_add(1, Ordering::Relaxed)
            ),
        });
        fs::create_dir_all(&run_dir).map_err(|err| ThemisError::Serve {
            reason: format!(
                "could not create sweep directory {}: {err}",
                run_dir.display()
            ),
        })?;
        let mut tasks = Vec::with_capacity(shards.len());
        for spec in shards {
            let index = spec.shard_index();
            let spec_path = run_dir.join(format!("shard-{index}.spec.json"));
            fs::write(&spec_path, spec.to_json()).map_err(|err| ThemisError::Serve {
                reason: format!("could not write {}: {err}", spec_path.display()),
            })?;
            let out_path = run_dir.join(format!("shard-{index}.partial.json"));
            // Crash resume: a valid partial report left behind by an earlier
            // run of the same sweep id stands in for executing the shard.
            let resumed_report = resumable_report(&out_path, spec);
            if let Some(report) = &resumed_report {
                log_event(
                    LogLevel::Info,
                    "orchestrator.resume",
                    &[
                        ("shard", Json::Num(index as f64)),
                        ("cells", Json::Num(report.len() as f64)),
                        ("report", Json::Str(out_path.display().to_string())),
                    ],
                );
            }
            tasks.push(Task {
                index,
                spec_path,
                out_path,
                progress_path: run_dir.join(format!("shard-{index}.progress")),
                attempts: 0,
                perf: None,
                resumed: resumed_report.is_some(),
                failures: Vec::new(),
                state: match resumed_report {
                    Some(report) => TaskState::Done(Box::new(report)),
                    None => TaskState::Waiting {
                        until: Instant::now(),
                    },
                },
            });
        }
        // On error, dropping `tasks` reaps any still-running workers through
        // each `WorkerGuard`; the same holds if the caller unwinds.
        self.supervise(&mut tasks)?;
        let attempts: Vec<u32> = tasks.iter().map(|task| task.attempts).collect();
        let shard_perf: Vec<Option<ShardPerf>> = tasks.iter().map(|task| task.perf).collect();
        let resumed_shards: Vec<usize> = tasks
            .iter()
            .filter(|task| task.resumed)
            .map(|task| task.index)
            .collect();
        let failures: Vec<AttemptFailure> = tasks
            .iter_mut()
            .flat_map(|task| std::mem::take(&mut task.failures))
            .collect();
        let reports: Vec<ShardReport> = tasks
            .into_iter()
            .map(|task| match task.state {
                TaskState::Done(report) => *report,
                _ => unreachable!("supervise returns Ok only once every task is done"),
            })
            .collect();
        let merged = merge_reports(&reports)?;
        log_event(
            LogLevel::Info,
            "orchestrator.merge",
            &[
                ("shards", Json::Num(shards.len() as f64)),
                ("cells", Json::Num(merged.len() as f64)),
                ("retries", Json::Num(failures.len() as f64)),
                ("resumed", Json::Num(resumed_shards.len() as f64)),
            ],
        );
        if !self.options.keep_files {
            let _ = fs::remove_dir_all(&run_dir);
        }
        Ok(SweepOutcome {
            merged,
            attempts,
            shard_perf,
            resumed_shards,
            failures,
        })
    }

    /// The supervision loop: launch due tasks, poll running ones, schedule
    /// retries, until every task is done or one exhausts its attempts.
    fn supervise(&self, tasks: &mut [Task]) -> Result<(), ThemisError> {
        loop {
            let mut pending = false;
            for task in tasks.iter_mut() {
                match self.poll(task) {
                    Step::Idle => {}
                    Step::Launch => self.launch(task)?,
                    Step::Finish(report) => task.state = TaskState::Done(report),
                    Step::Retry(kind, reason) => self.schedule_retry(task, kind, &reason)?,
                }
                if !matches!(task.state, TaskState::Done(_)) {
                    pending = true;
                }
            }
            if !pending {
                return Ok(());
            }
            std::thread::sleep(self.options.poll_interval);
        }
    }

    /// Inspects one task without mutating anything outside its state.
    fn poll(&self, task: &mut Task) -> Step {
        match &mut task.state {
            TaskState::Done(_) => Step::Idle,
            TaskState::Waiting { until } => {
                if Instant::now() >= *until {
                    Step::Launch
                } else {
                    Step::Idle
                }
            }
            TaskState::Running {
                child,
                last_progress,
                last_change,
                saw_heartbeat,
            } => match child.try_wait() {
                Err(err) => Step::Retry(
                    FailureKind::BadReport,
                    format!("could not poll worker: {err}"),
                ),
                Ok(Some(status)) if status.success() => match read_shard_report(&task.out_path) {
                    Some(report) => {
                        task.perf = fs::read_to_string(&task.progress_path)
                            .ok()
                            .and_then(|text| ShardPerf::from_heartbeat(&text));
                        let mut fields = vec![
                            ("shard", Json::Num(task.index as f64)),
                            ("cells", Json::Num(report.len() as f64)),
                            ("attempt", Json::Num(task.attempts as f64)),
                        ];
                        if let Some(perf) = task.perf {
                            fields.push(("cells_per_sec", Json::Num(perf.cells_per_sec())));
                        }
                        log_event(LogLevel::Info, "orchestrator.shard_done", &fields);
                        Step::Finish(Box::new(report))
                    }
                    None => Step::Retry(
                        FailureKind::BadReport,
                        "worker exited cleanly but left no verifiable shard report".to_string(),
                    ),
                },
                Ok(Some(status)) => Step::Retry(
                    FailureKind::WorkerExit,
                    match status.code() {
                        Some(code) => format!("worker exited with code {code}"),
                        None => "worker was killed by a signal".to_string(),
                    },
                ),
                Ok(None) => {
                    let progress = fs::read_to_string(&task.progress_path).unwrap_or_default();
                    if progress != *last_progress {
                        log_event(
                            LogLevel::Debug,
                            "orchestrator.heartbeat",
                            &[
                                ("shard", Json::Num(task.index as f64)),
                                ("heartbeat", Json::Str(progress.trim().to_string())),
                            ],
                        );
                        *last_progress = progress;
                        *last_change = Instant::now();
                        *saw_heartbeat = true;
                        Step::Idle
                    } else if last_change.elapsed() > self.options.stall_timeout {
                        child.kill_and_wait();
                        // A worker that never heartbeated hung before its
                        // main loop (spawn timeout); one that heartbeated and
                        // stopped stalled mid-run. The two point at different
                        // problems, so they are logged and recorded apart.
                        let kind = if *saw_heartbeat {
                            FailureKind::Stall
                        } else {
                            FailureKind::SpawnTimeout
                        };
                        let event = match kind {
                            FailureKind::Stall => "orchestrator.stall",
                            _ => "orchestrator.spawn_timeout",
                        };
                        log_event(
                            LogLevel::Warn,
                            event,
                            &[
                                ("shard", Json::Num(task.index as f64)),
                                (
                                    "timeout_ms",
                                    Json::Num(self.options.stall_timeout.as_millis() as f64),
                                ),
                            ],
                        );
                        let detail = match kind {
                            FailureKind::Stall => "worker heartbeat stalled for more than",
                            _ => "worker wrote no first heartbeat within",
                        };
                        Step::Retry(kind, format!("{detail} {:?}", self.options.stall_timeout))
                    } else {
                        Step::Idle
                    }
                }
            },
        }
    }

    /// Spawns the worker process for a task's next attempt.
    fn launch(&self, task: &mut Task) -> Result<(), ThemisError> {
        // Drop any artifacts of a killed earlier attempt so a fresh exit
        // status is never paired with a stale report or heartbeat.
        let _ = fs::remove_file(&task.out_path);
        let _ = fs::remove_file(&task.progress_path);
        let mut cmd = Command::new(&self.options.worker);
        cmd.arg("run")
            .arg(&task.spec_path)
            .arg("--out")
            .arg(&task.out_path)
            .arg("--progress")
            .arg(&task.progress_path)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(cache) = &self.options.cache_file {
            cmd.arg("--cache").arg(cache);
        }
        if self.options.threads_per_worker > 1 {
            cmd.arg("--threads")
                .arg(self.options.threads_per_worker.to_string());
        }
        if task.attempts == 0 {
            if let Some((_, after_cells)) = self
                .options
                .fail_first_attempt
                .iter()
                .find(|(shard, _)| *shard == task.index)
            {
                cmd.arg("--fail-after").arg(after_cells.to_string());
            }
        }
        let child = cmd.spawn().map_err(|err| ThemisError::Serve {
            reason: format!(
                "could not spawn shard worker `{}`: {err}",
                self.options.worker.display()
            ),
        })?;
        task.attempts += 1;
        log_event(
            LogLevel::Info,
            "orchestrator.spawn",
            &[
                ("shard", Json::Num(task.index as f64)),
                ("attempt", Json::Num(task.attempts as f64)),
                (
                    "worker",
                    Json::Str(self.options.worker.display().to_string()),
                ),
            ],
        );
        task.state = TaskState::Running {
            child: WorkerGuard(child),
            last_progress: String::new(),
            last_change: Instant::now(),
            saw_heartbeat: false,
        };
        Ok(())
    }

    /// Schedules a failed attempt's retry, or gives up once the shard has
    /// exhausted its attempts. Either way the failure joins the shard's
    /// supervision history.
    fn schedule_retry(
        &self,
        task: &mut Task,
        kind: FailureKind,
        reason: &str,
    ) -> Result<(), ThemisError> {
        task.failures.push(AttemptFailure {
            shard: task.index,
            attempt: task.attempts,
            kind,
            reason: reason.to_string(),
        });
        if task.attempts >= self.options.max_attempts {
            return Err(ThemisError::Serve {
                reason: format!(
                    "shard {} failed after {} attempts ({kind}): {reason}",
                    task.index, task.attempts
                ),
            });
        }
        let exponent = task.attempts.saturating_sub(1).min(16);
        let backoff = self
            .options
            .backoff_base
            .saturating_mul(1u32 << exponent)
            .min(self.options.backoff_cap);
        log_event(
            LogLevel::Warn,
            "orchestrator.retry",
            &[
                ("shard", Json::Num(task.index as f64)),
                ("attempt", Json::Num(task.attempts as f64)),
                ("kind", Json::Str(kind.as_str().to_string())),
                ("reason", Json::Str(reason.to_string())),
                ("backoff_ms", Json::Num(backoff.as_millis() as f64)),
            ],
        );
        task.state = TaskState::Waiting {
            until: Instant::now() + backoff,
        };
        Ok(())
    }
}

/// Reads a worker's partial report with checksum verification: a sealed
/// file must verify (a torn or tampered one is quarantined to
/// `<path>.corrupt-<n>` and rejected), a legacy unsealed file is parsed
/// as-is, and a verified-but-unparseable payload is quarantined too. `None`
/// always means "treat the shard as not done".
fn read_shard_report(out_path: &Path) -> Option<ShardReport> {
    let body = match durable::read_verified(out_path) {
        Ok(VerifiedRead::Clean(body)) | Ok(VerifiedRead::Legacy(body)) => body,
        Ok(VerifiedRead::Corrupt { reason }) => {
            let _ = durable::quarantine(out_path, &reason);
            return None;
        }
        Ok(VerifiedRead::Missing) | Err(_) => return None,
    };
    match ShardReport::from_json(&body) {
        Ok(report) => Some(report),
        Err(err) => {
            let _ = durable::quarantine(out_path, &err.to_string());
            None
        }
    }
}

/// Checks whether `out_path` holds a shard report that can stand in for
/// executing `spec`: verified ([`read_shard_report`] — a truncated or
/// corrupted file from a crash mid-write is quarantined and rejected, so
/// resume can never adopt garbage), parseable, and an exact structural match
/// (shard index, shard count, cell kind, and the global indices of every
/// cell). Anything less — e.g. a report from a different plan reusing the
/// sweep id — is rejected and the shard is executed normally.
fn resumable_report(out_path: &Path, spec: &ShardSpec) -> Option<ShardReport> {
    let report = read_shard_report(out_path)?;
    let matches = report.shard_index() == spec.shard_index()
        && report.shard_count() == spec.shard_count()
        && report.is_stream() == spec.is_stream()
        && report.global_indices() == spec.global_indices();
    matches.then_some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_kinds_have_stable_wire_names() {
        assert_eq!(FailureKind::SpawnTimeout.as_str(), "spawn-timeout");
        assert_eq!(FailureKind::Stall.as_str(), "stall");
        assert_eq!(FailureKind::WorkerExit.as_str(), "worker-exit");
        assert_eq!(FailureKind::BadReport.as_str(), "bad-report");
        assert_eq!(FailureKind::Stall.to_string(), "stall");
    }

    #[test]
    fn sweep_id_builder_sets_the_option() {
        let options = OrchestratorOptions::new("worker").with_sweep_id("ci-run.7");
        assert_eq!(options.sweep_id.as_deref(), Some("ci-run.7"));
        assert_eq!(OrchestratorOptions::new("worker").sweep_id, None);
    }

    #[test]
    fn invalid_sweep_ids_are_rejected_before_spawning() {
        use crate::api::{Job, Platform};
        use themis_net::presets::PresetTopology;
        for bad in ["", "../escape", "a/b", "white space"] {
            let mut options = OrchestratorOptions::new("no-such-worker-binary");
            options.sweep_id = Some(bad.to_string());
            let err = Orchestrator::new(options)
                .run_campaign(&[RunSpec::new(
                    Platform::preset(PresetTopology::Sw2d),
                    Job::all_reduce_mib(1.0).chunks(2),
                )])
                .unwrap_err();
            assert!(err.to_string().contains("invalid sweep id"), "{bad}: {err}");
        }
    }

    #[cfg(unix)]
    #[test]
    fn worker_guard_reaps_the_child_on_drop() {
        let child = Command::new("sleep")
            .arg("30")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn sleep");
        let guard = WorkerGuard(child);
        let pid = guard.id();
        assert!(std::path::Path::new(&format!("/proc/{pid}")).exists());
        drop(guard);
        // Killed *and* reaped: the pid has left the process table entirely
        // (a leaked zombie would still show up under /proc).
        assert!(!std::path::Path::new(&format!("/proc/{pid}")).exists());
    }
}
