//! Cross-process campaign sharding: split an expanded campaign matrix into
//! self-contained shards, execute them anywhere, and merge the partial
//! reports back into one bit-identical campaign report.
//!
//! [`crate::api::Runner`] parallelises *within* one process. For
//! production-scale figure sweeps the matrix is larger than one machine: this
//! module partitions an expanded matrix (collective campaigns and stream
//! campaigns alike) into `N` shards so each shard can run in its own process
//! — or on its own host — and the partial results can be reassembled exactly.
//!
//! The moving parts:
//!
//! * [`ShardPlan`] — a deterministic partition of cell indices into shards,
//!   either [`ShardStrategy::RoundRobin`] or
//!   [`ShardStrategy::CostBalanced`] (greedy longest-processing-time over
//!   [`CampaignCell::cost_estimate`]).
//! * [`ShardSpec`] — one shard as a self-contained unit of work: the cells
//!   plus their global matrix indices, JSON round-trippable via
//!   [`crate::api::json`] so a spec file can travel to another process (the
//!   `shard-worker` binary in `crates/bench` executes one).
//! * [`ShardReport`] — the partial result of one shard, including the
//!   shard's schedule-cache hit/miss counters; also JSON round-trippable.
//! * [`merge_reports`] — validates and reassembles partial reports into a
//!   [`MergedReport`] whose [`CampaignReport`] / [`StreamCampaignReport`] is
//!   **bit-identical** to what the unsharded [`Runner::execute`] /
//!   [`Runner::execute_streams`] would have produced on the same matrix.
//!
//! Workers warm-start from a shared schedule-cache file
//! ([`themis_core::ScheduleCache::dump`] / [`themis_core::ScheduleCache::load`],
//! wrapped into a [`SimPlanCache`]): cells repeated across
//! shards or across successive campaigns are scheduled once, and the merged
//! report surfaces the aggregate hit/miss counters.
//!
//! ```
//! use themis::prelude::*;
//! use themis::api::shard::{merge_reports, ShardPlan, ShardSpec, ShardStrategy};
//!
//! # fn main() -> Result<(), ThemisError> {
//! let campaign = Campaign::new()
//!     .topologies([PresetTopology::Sw2d])
//!     .sizes_mib([32.0, 64.0])
//!     .chunk_counts([8]);
//! let specs = campaign.expand()?;
//!
//! // Partition the 6-cell matrix into 2 shards and execute each on its own
//! // (in one process here; each spec round-trips through JSON to any other).
//! let plan = ShardPlan::from_cells(ShardStrategy::CostBalanced, &specs, 2);
//! let shards = ShardSpec::campaign_shards(&specs, &plan)?;
//! let runner = Runner::sequential();
//! let partials = shards
//!     .iter()
//!     .map(|shard| shard.execute(&runner))
//!     .collect::<Result<Vec<_>, _>>()?;
//!
//! // The merged report is bit-identical to the unsharded run.
//! let merged = merge_reports(&partials)?;
//! let direct = campaign.run(&runner)?;
//! assert_eq!(merged.campaign(), Some(&direct));
//! # Ok(())
//! # }
//! ```

use crate::api::json::Json;
use crate::api::platform::Platform;
use crate::api::report::{
    collective_from_label, run_result_from_json, run_result_to_json, scheduler_from_label,
};
use crate::api::report::{CampaignReport, RunResult};
use crate::api::runner::{CampaignCell, RunSpec, Runner};
use crate::api::stream::{
    stream_result_from_json, stream_result_to_json, QueuedCollective, StreamCampaignReport,
    StreamJob, StreamRunResult, StreamSpec,
};
use crate::api::Job;
use crate::error::ThemisError;
use themis_core::SimPlanCache;
use themis_net::{DataSize, DimensionSpec, NetworkTopology, TopologyKind};
use themis_sim::{FaultEvent, FaultKind, FaultPlan, SimOptions};

/// How a [`ShardPlan`] distributes cells over shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Cell `i` goes to shard `i % shards`. Simple and load-agnostic.
    RoundRobin,
    /// Greedy longest-processing-time balancing over
    /// [`CampaignCell::cost_estimate`]: cells are assigned, most expensive
    /// first, to the currently least-loaded shard. Better wall-clock balance
    /// when cell costs are skewed (mixed sizes or chunk counts).
    CostBalanced,
}

impl ShardStrategy {
    /// Builds the plan for `cells` under this strategy.
    pub fn plan<C: CampaignCell>(self, cells: &[C], shard_count: usize) -> ShardPlan {
        ShardPlan::from_cells(self, cells, shard_count)
    }
}

/// A deterministic partition of the cell indices `0..cells` of an expanded
/// campaign matrix into shards.
///
/// Shard counts exceeding the cell count simply leave the surplus shards
/// empty; a shard count of zero is treated as one. Within every shard the
/// indices are ascending, and the same inputs always produce the same plan —
/// planning on one host and executing on others is reproducible.
///
/// ```
/// use themis::api::shard::ShardPlan;
///
/// let plan = ShardPlan::round_robin(5, 2);
/// assert_eq!(plan.shard_count(), 2);
/// assert_eq!(plan.shard(0), &[0, 2, 4]);
/// assert_eq!(plan.shard(1), &[1, 3]);
///
/// // Cost balancing puts the two expensive cells on different shards.
/// let plan = ShardPlan::cost_balanced(&[10.0, 1.0, 1.0, 10.0], 2);
/// assert_eq!(plan.shard(0), &[0, 1]);
/// assert_eq!(plan.shard(1), &[2, 3]);
///
/// // More shards than cells: the surplus shards are empty.
/// let plan = ShardPlan::round_robin(2, 4);
/// assert_eq!(plan.cell_count(), 2);
/// assert!(plan.shard(3).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    assignments: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Plans `cells` under `strategy` (cost estimates are taken from
    /// [`CampaignCell::cost_estimate`] when the strategy needs them).
    pub fn from_cells<C: CampaignCell>(
        strategy: ShardStrategy,
        cells: &[C],
        shard_count: usize,
    ) -> Self {
        match strategy {
            ShardStrategy::RoundRobin => ShardPlan::round_robin(cells.len(), shard_count),
            ShardStrategy::CostBalanced => {
                let costs: Vec<f64> = cells.iter().map(CampaignCell::cost_estimate).collect();
                ShardPlan::cost_balanced(&costs, shard_count)
            }
        }
    }

    /// Round-robin plan: cell `i` goes to shard `i % shard_count`.
    pub fn round_robin(cells: usize, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let mut assignments = vec![Vec::new(); shard_count];
        for index in 0..cells {
            assignments[index % shard_count].push(index);
        }
        ShardPlan { assignments }
    }

    /// Cost-balanced plan: greedy longest-processing-time assignment of
    /// `costs` (one entry per cell) onto the least-loaded shard. Ties —
    /// equal costs, equal loads — break towards the lower index, so the plan
    /// is deterministic; non-finite or negative costs count as zero load.
    pub fn cost_balanced(costs: &[f64], shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by(|&a, &b| {
            costs[b]
                .partial_cmp(&costs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut loads = vec![0.0f64; shard_count];
        let mut assignments = vec![Vec::new(); shard_count];
        for index in order {
            let target = loads
                .iter()
                .enumerate()
                .min_by(|(i, a), (j, b)| {
                    a.partial_cmp(b)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(i.cmp(j))
                })
                .map(|(i, _)| i)
                .expect("shard_count >= 1");
            let cost = costs[index];
            loads[target] += if cost.is_finite() && cost > 0.0 {
                cost
            } else {
                0.0
            };
            assignments[target].push(index);
        }
        for shard in &mut assignments {
            shard.sort_unstable();
        }
        ShardPlan { assignments }
    }

    /// Number of shards (≥ 1; surplus shards may be empty).
    pub fn shard_count(&self) -> usize {
        self.assignments.len()
    }

    /// Total number of cells across all shards.
    pub fn cell_count(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }

    /// The ascending global cell indices of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard(&self, shard: usize) -> &[usize] {
        &self.assignments[shard]
    }

    /// Iterates over the shards' index lists.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.assignments.iter().map(Vec::as_slice)
    }
}

/// The cells of one shard, carrying their global matrix indices.
#[derive(Debug, Clone, PartialEq)]
enum ShardCells {
    Campaign(Vec<(usize, RunSpec)>),
    Stream(Vec<(usize, StreamSpec)>),
}

/// One shard of an expanded campaign matrix: a self-contained unit of work.
///
/// A shard knows which slice of the matrix it holds (`shard_index` of
/// `shard_count`, plus each cell's global index), executes through any
/// [`Runner`], and round-trips through JSON so a spec file can be handed to
/// another process (`shard-worker run`). Merging the resulting
/// [`ShardReport`]s with [`merge_reports`] reproduces the unsharded report
/// bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    shard_index: usize,
    shard_count: usize,
    cells: ShardCells,
}

impl ShardSpec {
    /// Splits an expanded collective-campaign matrix into shard specs
    /// following `plan` (one [`ShardSpec`] per plan shard, including empty
    /// ones).
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Campaign`] if the plan's cell count does not
    /// match `specs`.
    pub fn campaign_shards(
        specs: &[RunSpec],
        plan: &ShardPlan,
    ) -> Result<Vec<ShardSpec>, ThemisError> {
        check_plan(plan, specs.len())?;
        Ok(plan
            .iter()
            .enumerate()
            .map(|(shard_index, indices)| ShardSpec {
                shard_index,
                shard_count: plan.shard_count(),
                cells: ShardCells::Campaign(
                    indices.iter().map(|&i| (i, specs[i].clone())).collect(),
                ),
            })
            .collect())
    }

    /// Splits an expanded stream-campaign matrix into shard specs following
    /// `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Campaign`] if the plan's cell count does not
    /// match `specs`.
    pub fn stream_shards(
        specs: &[StreamSpec],
        plan: &ShardPlan,
    ) -> Result<Vec<ShardSpec>, ThemisError> {
        check_plan(plan, specs.len())?;
        Ok(plan
            .iter()
            .enumerate()
            .map(|(shard_index, indices)| ShardSpec {
                shard_index,
                shard_count: plan.shard_count(),
                cells: ShardCells::Stream(indices.iter().map(|&i| (i, specs[i].clone())).collect()),
            })
            .collect())
    }

    /// This shard's position within the plan.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// Total number of shards in the plan this spec came from.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Number of cells in this shard.
    pub fn len(&self) -> usize {
        match &self.cells {
            ShardCells::Campaign(cells) => cells.len(),
            ShardCells::Stream(cells) => cells.len(),
        }
    }

    /// `true` if the shard holds no cells (plans with more shards than cells
    /// produce empty shards).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if this shard holds stream-campaign cells.
    pub fn is_stream(&self) -> bool {
        matches!(self.cells, ShardCells::Stream(_))
    }

    /// The global matrix indices of this shard's cells, ascending.
    pub fn global_indices(&self) -> Vec<usize> {
        match &self.cells {
            ShardCells::Campaign(cells) => cells.iter().map(|(i, _)| *i).collect(),
            ShardCells::Stream(cells) => cells.iter().map(|(i, _)| *i).collect(),
        }
    }

    /// Executes the shard with a private precompiled plan cache.
    ///
    /// # Errors
    ///
    /// Returns the first scheduling/simulation error in cell order.
    pub fn execute(&self, runner: &Runner) -> Result<ShardReport, ThemisError> {
        self.execute_with_cache(runner, &SimPlanCache::new())
    }

    /// Executes the shard through a caller-provided [`SimPlanCache`] — wrap a
    /// [`themis_core::ScheduleCache`] loaded from a dumped cache file
    /// ([`SimPlanCache::with_schedules`]) to warm-start, dump
    /// `plan.schedules()` afterwards to publish this shard's schedules. The
    /// report's [`CacheStats`] count only this execution's schedule lookups
    /// (not earlier users of the same plan).
    ///
    /// Cells are dispatched by reference: executing a shard repeatedly (e.g.
    /// in a benchmark loop) does not re-clone its platforms and jobs per run.
    ///
    /// # Errors
    ///
    /// Returns the first scheduling/simulation error in cell order.
    pub fn execute_with_cache(
        &self,
        runner: &Runner,
        plan: &SimPlanCache,
    ) -> Result<ShardReport, ThemisError> {
        let cache = plan.schedules();
        let before = cache.stats();
        let results = match &self.cells {
            ShardCells::Campaign(cells) => {
                let specs: Vec<&RunSpec> = cells.iter().map(|(_, spec)| spec).collect();
                let results = runner.execute_with_cache(&specs, plan)?;
                ShardResults::Campaign(cells.iter().map(|(i, _)| *i).zip(results).collect())
            }
            ShardCells::Stream(cells) => {
                let specs: Vec<&StreamSpec> = cells.iter().map(|(_, spec)| spec).collect();
                let results = runner.execute_with_cache(&specs, plan)?;
                ShardResults::Stream(cells.iter().map(|(i, _)| *i).zip(results).collect())
            }
        };
        Ok(ShardReport {
            shard_index: self.shard_index,
            shard_count: self.shard_count,
            cache: cache.stats().delta(&before),
            results,
        })
    }

    /// Like [`ShardSpec::execute_with_cache`], but executing the cells one at
    /// a time and calling `observe(done, total)` after each — the hook
    /// `shard-worker run` uses to emit heartbeat/progress lines the
    /// orchestrator ([`crate::api::orchestrator`]) watches. `observe` is also
    /// called once with `(0, total)` before the first cell, so a worker
    /// proves liveness even while its first cell simulates.
    ///
    /// Returning `false` from `observe` aborts the shard with
    /// [`ThemisError::Serve`] — the deterministic failure path behind the
    /// worker's `--fail-after` test hook.
    ///
    /// Cells share `plan` exactly as the batch path does, so the report is
    /// bit-identical to [`ShardSpec::execute_with_cache`].
    ///
    /// # Errors
    ///
    /// Returns the first scheduling/simulation error in cell order, or
    /// [`ThemisError::Serve`] when `observe` aborts.
    pub fn execute_with_cache_observed(
        &self,
        runner: &Runner,
        plan: &SimPlanCache,
        mut observe: impl FnMut(usize, usize) -> bool,
    ) -> Result<ShardReport, ThemisError> {
        let total = self.len();
        let mut check = |done: usize| {
            if observe(done, total) {
                Ok(())
            } else {
                Err(ThemisError::Serve {
                    reason: format!(
                        "shard {} aborted by its observer after {done} of {total} cells",
                        self.shard_index
                    ),
                })
            }
        };
        check(0)?;
        let cache = plan.schedules();
        let before = cache.stats();
        let results = match &self.cells {
            ShardCells::Campaign(cells) => {
                let mut results = Vec::with_capacity(cells.len());
                for (done, (index, spec)) in cells.iter().enumerate() {
                    let mut cell = runner.execute_with_cache(std::slice::from_ref(spec), plan)?;
                    results.push((*index, cell.remove(0)));
                    check(done + 1)?;
                }
                ShardResults::Campaign(results)
            }
            ShardCells::Stream(cells) => {
                let mut results = Vec::with_capacity(cells.len());
                for (done, (index, spec)) in cells.iter().enumerate() {
                    let mut cell = runner.execute_with_cache(std::slice::from_ref(spec), plan)?;
                    results.push((*index, cell.remove(0)));
                    check(done + 1)?;
                }
                ShardResults::Stream(results)
            }
        };
        Ok(ShardReport {
            shard_index: self.shard_index,
            shard_count: self.shard_count,
            cache: cache.stats().delta(&before),
            results,
        })
    }

    /// Serializes the shard spec to compact JSON.
    pub fn to_json(&self) -> String {
        let (cells_kind, entries) = match &self.cells {
            ShardCells::Campaign(cells) => (
                "campaign",
                cells
                    .iter()
                    .map(|(index, spec)| {
                        Json::obj([
                            ("index", Json::Num(*index as f64)),
                            ("platform", platform_to_json(&spec.platform)),
                            ("job", job_to_json(&spec.job)),
                        ])
                    })
                    .collect(),
            ),
            ShardCells::Stream(cells) => (
                "stream",
                cells
                    .iter()
                    .map(|(index, spec)| {
                        Json::obj([
                            ("index", Json::Num(*index as f64)),
                            ("platform", platform_to_json(&spec.platform)),
                            ("stream", stream_job_to_json(&spec.job)),
                        ])
                    })
                    .collect(),
            ),
        };
        Json::obj([
            ("version", Json::Num(1.0)),
            ("kind", Json::Str("shard-spec".to_string())),
            ("cells", Json::Str(cells_kind.to_string())),
            ("shard_index", Json::Num(self.shard_index as f64)),
            ("shard_count", Json::Num(self.shard_count as f64)),
            ("entries", Json::Arr(entries)),
        ])
        .render()
    }

    /// Deserializes a spec previously produced by [`ShardSpec::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Json`] on malformed text or an unknown layout,
    /// and [`ThemisError::Net`] if a serialized platform fails validation.
    pub fn from_json(text: &str) -> Result<Self, ThemisError> {
        let value = Json::parse(text)?;
        let version = value.field("version")?.as_usize()?;
        let kind = value.field("kind")?.as_str()?;
        if version != 1 || kind != "shard-spec" {
            return Err(ThemisError::Json {
                reason: format!("unsupported shard spec `{kind}` v{version}"),
            });
        }
        let entries = value.field("entries")?.as_arr()?;
        let cells = match value.field("cells")?.as_str()? {
            "campaign" => ShardCells::Campaign(
                entries
                    .iter()
                    .map(|entry| {
                        Ok((
                            entry.field("index")?.as_usize()?,
                            RunSpec::new(
                                platform_from_json(entry.field("platform")?)?,
                                job_from_json(entry.field("job")?)?,
                            ),
                        ))
                    })
                    .collect::<Result<_, ThemisError>>()?,
            ),
            "stream" => ShardCells::Stream(
                entries
                    .iter()
                    .map(|entry| {
                        Ok((
                            entry.field("index")?.as_usize()?,
                            StreamSpec::new(
                                platform_from_json(entry.field("platform")?)?,
                                stream_job_from_json(entry.field("stream")?)?,
                            ),
                        ))
                    })
                    .collect::<Result<_, ThemisError>>()?,
            ),
            other => {
                return Err(ThemisError::Json {
                    reason: format!("unknown shard cell kind `{other}`"),
                })
            }
        };
        Ok(ShardSpec {
            shard_index: value.field("shard_index")?.as_usize()?,
            shard_count: value.field("shard_count")?.as_usize()?,
            cells,
        })
    }
}

fn check_plan(plan: &ShardPlan, cells: usize) -> Result<(), ThemisError> {
    if plan.cell_count() != cells {
        return Err(ThemisError::Campaign {
            reason: format!(
                "shard plan covers {} cells but the matrix has {cells}",
                plan.cell_count()
            ),
        });
    }
    Ok(())
}

/// The unified cache hit/miss view — re-exported from
/// [`themis_core::telemetry`], where every memo layer reports through the
/// same type. In a [`ShardReport`] it carries one shard execution's
/// schedule-cache counters (or their sum in a merged report).
pub use themis_core::telemetry::CacheStats;

/// Per-cell results of one shard, keyed by global matrix index.
#[derive(Debug, Clone, PartialEq)]
enum ShardResults {
    Campaign(Vec<(usize, RunResult)>),
    Stream(Vec<(usize, StreamRunResult)>),
}

/// The partial report of one executed shard: the shard's results keyed by
/// their global matrix indices, plus the shard's schedule-cache counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    shard_index: usize,
    shard_count: usize,
    cache: CacheStats,
    results: ShardResults,
}

impl ShardReport {
    /// This shard's position within the plan.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// Total number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Number of cells this shard executed.
    pub fn len(&self) -> usize {
        match &self.results {
            ShardResults::Campaign(results) => results.len(),
            ShardResults::Stream(results) => results.len(),
        }
    }

    /// `true` if the shard executed no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if this report holds stream-campaign results.
    pub fn is_stream(&self) -> bool {
        matches!(self.results, ShardResults::Stream(_))
    }

    /// The global matrix indices of this report's cells, in result order.
    /// The orchestrator compares these against a [`ShardSpec`] to decide
    /// whether an on-disk partial report can be resumed.
    pub fn global_indices(&self) -> Vec<usize> {
        match &self.results {
            ShardResults::Campaign(results) => results.iter().map(|(i, _)| *i).collect(),
            ShardResults::Stream(results) => results.iter().map(|(i, _)| *i).collect(),
        }
    }

    /// The shard's schedule-cache counters.
    pub fn cache(&self) -> CacheStats {
        self.cache
    }

    /// Serializes the partial report to compact JSON.
    pub fn to_json(&self) -> String {
        let (cells_kind, entries) = match &self.results {
            ShardResults::Campaign(results) => (
                "campaign",
                results
                    .iter()
                    .map(|(index, result)| {
                        Json::obj([
                            ("index", Json::Num(*index as f64)),
                            ("result", run_result_to_json(result)),
                        ])
                    })
                    .collect(),
            ),
            ShardResults::Stream(results) => (
                "stream",
                results
                    .iter()
                    .map(|(index, result)| {
                        Json::obj([
                            ("index", Json::Num(*index as f64)),
                            ("result", stream_result_to_json(result)),
                        ])
                    })
                    .collect(),
            ),
        };
        Json::obj([
            ("version", Json::Num(1.0)),
            ("kind", Json::Str("shard-report".to_string())),
            ("cells", Json::Str(cells_kind.to_string())),
            ("shard_index", Json::Num(self.shard_index as f64)),
            ("shard_count", Json::Num(self.shard_count as f64)),
            (
                "cache",
                Json::obj([
                    ("hits", Json::Num(self.cache.hits as f64)),
                    ("misses", Json::Num(self.cache.misses as f64)),
                ]),
            ),
            ("results", Json::Arr(entries)),
        ])
        .render()
    }

    /// Deserializes a report previously produced by [`ShardReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Json`] on malformed text or an unknown layout.
    pub fn from_json(text: &str) -> Result<Self, ThemisError> {
        let value = Json::parse(text)?;
        let version = value.field("version")?.as_usize()?;
        let kind = value.field("kind")?.as_str()?;
        if version != 1 || kind != "shard-report" {
            return Err(ThemisError::Json {
                reason: format!("unsupported shard report `{kind}` v{version}"),
            });
        }
        let entries = value.field("results")?.as_arr()?;
        let results = match value.field("cells")?.as_str()? {
            "campaign" => ShardResults::Campaign(
                entries
                    .iter()
                    .map(|entry| {
                        Ok((
                            entry.field("index")?.as_usize()?,
                            run_result_from_json(entry.field("result")?)?,
                        ))
                    })
                    .collect::<Result<_, ThemisError>>()?,
            ),
            "stream" => ShardResults::Stream(
                entries
                    .iter()
                    .map(|entry| {
                        Ok((
                            entry.field("index")?.as_usize()?,
                            stream_result_from_json(entry.field("result")?)?,
                        ))
                    })
                    .collect::<Result<_, ThemisError>>()?,
            ),
            other => {
                return Err(ThemisError::Json {
                    reason: format!("unknown shard cell kind `{other}`"),
                })
            }
        };
        let cache = value.field("cache")?;
        Ok(ShardReport {
            shard_index: value.field("shard_index")?.as_usize()?,
            shard_count: value.field("shard_count")?.as_usize()?,
            cache: CacheStats {
                hits: cache.field("hits")?.as_usize()? as u64,
                misses: cache.field("misses")?.as_usize()? as u64,
            },
            results,
        })
    }
}

/// The reassembled results of a merged sharded campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum MergedResults {
    /// A collective-campaign matrix.
    Campaign(CampaignReport),
    /// A stream-campaign matrix.
    Stream(StreamCampaignReport),
}

/// The outcome of [`merge_reports`]: the reassembled campaign report —
/// bit-identical to the unsharded run — plus the summed schedule-cache
/// counters of every shard.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedReport {
    cache: CacheStats,
    results: MergedResults,
}

impl MergedReport {
    /// Aggregate schedule-cache counters across all merged shards.
    pub fn cache(&self) -> CacheStats {
        self.cache
    }

    /// The merged results.
    pub fn results(&self) -> &MergedResults {
        &self.results
    }

    /// The merged collective-campaign report, if this was a campaign matrix.
    pub fn campaign(&self) -> Option<&CampaignReport> {
        match &self.results {
            MergedResults::Campaign(report) => Some(report),
            MergedResults::Stream(_) => None,
        }
    }

    /// The merged stream-campaign report, if this was a stream matrix.
    pub fn stream(&self) -> Option<&StreamCampaignReport> {
        match &self.results {
            MergedResults::Campaign(_) => None,
            MergedResults::Stream(report) => Some(report),
        }
    }

    /// Number of merged cells.
    pub fn len(&self) -> usize {
        match &self.results {
            MergedResults::Campaign(report) => report.len(),
            MergedResults::Stream(report) => report.len(),
        }
    }

    /// `true` if the merged matrix had no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the merged report (campaign report + cache counters) to
    /// compact JSON.
    pub fn to_json(&self) -> String {
        let (kind, report) = match &self.results {
            MergedResults::Campaign(report) => ("merged-campaign", report.to_json_value()),
            MergedResults::Stream(report) => ("merged-stream", report.to_json_value()),
        };
        Json::obj([
            ("version", Json::Num(1.0)),
            ("kind", Json::Str(kind.to_string())),
            (
                "cache",
                Json::obj([
                    ("hits", Json::Num(self.cache.hits as f64)),
                    ("misses", Json::Num(self.cache.misses as f64)),
                ]),
            ),
            ("report", report),
        ])
        .render()
    }

    /// Deserializes a report previously produced by [`MergedReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Json`] on malformed text or an unknown layout.
    pub fn from_json(text: &str) -> Result<Self, ThemisError> {
        let value = Json::parse(text)?;
        let version = value.field("version")?.as_usize()?;
        let kind = value.field("kind")?.as_str()?;
        if version != 1 {
            return Err(ThemisError::Json {
                reason: format!("unsupported merged report version {version}"),
            });
        }
        let report = value.field("report")?;
        let results = match kind {
            "merged-campaign" => MergedResults::Campaign(CampaignReport::from_json_value(report)?),
            "merged-stream" => {
                MergedResults::Stream(StreamCampaignReport::from_json_value(report)?)
            }
            other => {
                return Err(ThemisError::Json {
                    reason: format!("unsupported merged report `{other}`"),
                })
            }
        };
        let cache = value.field("cache")?;
        Ok(MergedReport {
            cache: CacheStats {
                hits: cache.field("hits")?.as_usize()? as u64,
                misses: cache.field("misses")?.as_usize()? as u64,
            },
            results,
        })
    }
}

/// Reassembles the partial reports of every shard of one plan into the
/// report the unsharded [`Runner::execute`] / [`Runner::execute_streams`]
/// would have produced — bit-identical, in matrix order — and sums the
/// shards' schedule-cache counters.
///
/// # Errors
///
/// Returns [`ThemisError::Campaign`] if the reports disagree on the shard
/// count or cell kind, a shard is missing/duplicated, or the global indices
/// do not form a complete `0..n` matrix.
pub fn merge_reports(reports: &[ShardReport]) -> Result<MergedReport, ThemisError> {
    let first = reports.first().ok_or_else(|| ThemisError::Campaign {
        reason: "cannot merge zero shard reports".to_string(),
    })?;
    if reports.len() != first.shard_count {
        return Err(ThemisError::Campaign {
            reason: format!(
                "plan has {} shards but {} reports were provided",
                first.shard_count,
                reports.len()
            ),
        });
    }
    let mut seen_shards = vec![false; first.shard_count];
    for report in reports {
        if report.shard_count != first.shard_count {
            return Err(ThemisError::Campaign {
                reason: format!(
                    "shard {} reports {} total shards, expected {}",
                    report.shard_index, report.shard_count, first.shard_count
                ),
            });
        }
        if report.is_stream() != first.is_stream() {
            return Err(ThemisError::Campaign {
                reason: "cannot merge campaign and stream shard reports".to_string(),
            });
        }
        let slot =
            seen_shards
                .get_mut(report.shard_index)
                .ok_or_else(|| ThemisError::Campaign {
                    reason: format!(
                        "shard index {} is out of range for {} shards",
                        report.shard_index, first.shard_count
                    ),
                })?;
        if std::mem::replace(slot, true) {
            return Err(ThemisError::Campaign {
                reason: format!("duplicate report for shard {}", report.shard_index),
            });
        }
    }
    let cache = CacheStats {
        hits: reports.iter().map(|r| r.cache.hits).sum(),
        misses: reports.iter().map(|r| r.cache.misses).sum(),
    };
    let results = if first.is_stream() {
        MergedResults::Stream(StreamCampaignReport::new(collect_ordered(
            reports.iter().flat_map(|r| match &r.results {
                ShardResults::Stream(results) => results.iter().cloned(),
                ShardResults::Campaign(_) => unreachable!("kinds verified above"),
            }),
        )?))
    } else {
        MergedResults::Campaign(CampaignReport::new(collect_ordered(
            reports.iter().flat_map(|r| match &r.results {
                ShardResults::Campaign(results) => results.iter().cloned(),
                ShardResults::Stream(_) => unreachable!("kinds verified above"),
            }),
        )?))
    };
    Ok(MergedReport { cache, results })
}

/// Orders `(global index, result)` pairs by index and verifies they form a
/// complete, duplicate-free `0..n` matrix.
fn collect_ordered<R>(pairs: impl Iterator<Item = (usize, R)>) -> Result<Vec<R>, ThemisError> {
    let mut indexed: Vec<(usize, R)> = pairs.collect();
    indexed.sort_by_key(|(index, _)| *index);
    for (position, (index, _)) in indexed.iter().enumerate() {
        if *index != position {
            return Err(ThemisError::Campaign {
                reason: format!(
                    "shard reports do not cover the full matrix: expected cell {position}, \
                     found {index}"
                ),
            });
        }
    }
    Ok(indexed.into_iter().map(|(_, result)| result).collect())
}

// ---------------------------------------------------------------------------
// JSON forms of the spec halves (platform, job, stream job). These live here
// rather than on the types themselves because sharding and the service layer
// ([`crate::api::serve`]) are the only consumers of *spec* (as opposed to
// report) serialization.
// ---------------------------------------------------------------------------

pub(crate) fn platform_to_json(platform: &Platform) -> Json {
    let options = platform.options();
    Json::obj([
        ("name", Json::Str(platform.name().to_string())),
        (
            "dims",
            Json::Arr(
                platform
                    .topology()
                    .dims()
                    .iter()
                    .map(|dim| {
                        Json::obj([
                            ("kind", Json::Str(dim.kind().label().to_string())),
                            ("size", Json::Num(dim.size() as f64)),
                            (
                                "link_bandwidth_gbps",
                                Json::Num(dim.link_bandwidth().as_gbps()),
                            ),
                            ("links_per_npu", Json::Num(dim.links_per_npu() as f64)),
                            ("step_latency_ns", Json::Num(dim.step_latency_ns())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "options",
            Json::obj([
                (
                    "max_concurrent_ops_per_dim",
                    Json::Num(options.max_concurrent_ops_per_dim as f64),
                ),
                (
                    "enforce_intra_dim_order",
                    Json::Bool(options.enforce_intra_dim_order),
                ),
                ("activity_window_ns", Json::Num(options.activity_window_ns)),
                (
                    "cross_collective_overlap",
                    Json::Bool(options.cross_collective_overlap),
                ),
                ("record_op_log", Json::Bool(options.record_op_log)),
                ("reference_engine", Json::Bool(options.reference_engine)),
                (
                    "faults",
                    Json::Arr(
                        options
                            .faults
                            .events()
                            .iter()
                            .map(fault_event_to_json)
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

fn fault_event_to_json(event: &FaultEvent) -> Json {
    let mut pairs = vec![
        ("at_ns", Json::Num(event.at_ns)),
        ("dim", Json::Num(event.dim as f64)),
    ];
    match event.kind {
        FaultKind::Degrade { factor } => {
            pairs.push(("kind", Json::Str("degrade".to_string())));
            pairs.push(("factor", Json::Num(factor)));
        }
        FaultKind::Fail => pairs.push(("kind", Json::Str("fail".to_string()))),
        FaultKind::Recover => pairs.push(("kind", Json::Str("recover".to_string()))),
    }
    Json::obj(pairs)
}

fn fault_event_from_json(value: &Json) -> Result<FaultEvent, ThemisError> {
    let kind = match value.field("kind")?.as_str()? {
        "degrade" => FaultKind::Degrade {
            factor: value.field("factor")?.as_f64()?,
        },
        "fail" => FaultKind::Fail,
        "recover" => FaultKind::Recover,
        other => {
            return Err(ThemisError::Campaign {
                reason: format!("unknown fault kind `{other}`"),
            })
        }
    };
    Ok(FaultEvent {
        at_ns: value.field("at_ns")?.as_f64()?,
        dim: value.field("dim")?.as_usize()?,
        kind,
    })
}

pub(crate) fn platform_from_json(value: &Json) -> Result<Platform, ThemisError> {
    let mut dims = Vec::new();
    for dim in value.field("dims")?.as_arr()? {
        let label = dim.field("kind")?.as_str()?;
        let kind = TopologyKind::all()
            .into_iter()
            .find(|k| k.label() == label)
            .ok_or_else(|| ThemisError::Json {
                reason: format!("unknown dimension topology `{label}`"),
            })?;
        dims.push(DimensionSpec::new(
            kind,
            dim.field("size")?.as_usize()?,
            dim.field("link_bandwidth_gbps")?.as_f64()?,
            dim.field("links_per_npu")?.as_usize()?,
            dim.field("step_latency_ns")?.as_f64()?,
        )?);
    }
    let topology = NetworkTopology::new(value.field("name")?.as_str()?, dims)?;
    let options = value.field("options")?;
    // `faults` is optional for backward compatibility: specs serialized
    // before fault support parse as fault-free.
    let faults = match options.get("faults") {
        Some(list) => FaultPlan::from_events(
            list.as_arr()?
                .iter()
                .map(fault_event_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        None => FaultPlan::new(),
    };
    Ok(Platform::custom(topology).with_options(SimOptions {
        max_concurrent_ops_per_dim: options.field("max_concurrent_ops_per_dim")?.as_usize()?,
        enforce_intra_dim_order: options.field("enforce_intra_dim_order")?.as_bool()?,
        activity_window_ns: options.field("activity_window_ns")?.as_f64()?,
        cross_collective_overlap: options.field("cross_collective_overlap")?.as_bool()?,
        record_op_log: options.field("record_op_log")?.as_bool()?,
        faults,
        // Optional for backward compatibility, like `faults`: specs
        // serialized before the engine rewrite parse as fast-engine runs
        // (bit-identical either way).
        reference_engine: match options.get("reference_engine") {
            Some(flag) => flag.as_bool()?,
            None => false,
        },
    }))
}

pub(crate) fn job_to_json(job: &Job) -> Json {
    Json::obj([
        ("collective", Json::Str(job.kind().to_string())),
        ("size_bytes", Json::Num(job.size().as_bytes_f64())),
        ("chunks", Json::Num(job.chunk_count() as f64)),
        (
            "scheduler",
            Json::Str(job.scheduler_kind().label().to_string()),
        ),
    ])
}

pub(crate) fn job_from_json(value: &Json) -> Result<Job, ThemisError> {
    Ok(Job::new(
        collective_from_label(value.field("collective")?.as_str()?)?,
        DataSize::from_bytes(value.field("size_bytes")?.as_f64()? as u64),
    )
    .chunks(value.field("chunks")?.as_usize()?)
    .scheduler(scheduler_from_label(value.field("scheduler")?.as_str()?)?))
}

pub(crate) fn stream_job_to_json(job: &StreamJob) -> Json {
    Json::obj([
        ("name", Json::Str(job.name().to_string())),
        (
            "scheduler",
            Json::Str(job.scheduler_kind().label().to_string()),
        ),
        ("chunks", Json::Num(job.chunk_count() as f64)),
        (
            "collectives",
            Json::Arr(
                job.entries()
                    .iter()
                    .map(|entry| {
                        Json::obj([
                            ("label", Json::Str(entry.label().to_string())),
                            ("issue_ns", Json::Num(entry.issue_ns())),
                            ("collective", Json::Str(entry.kind().to_string())),
                            ("size_bytes", Json::Num(entry.size().as_bytes_f64())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

pub(crate) fn stream_job_from_json(value: &Json) -> Result<StreamJob, ThemisError> {
    let mut entries = Vec::new();
    for entry in value.field("collectives")?.as_arr()? {
        entries.push(
            QueuedCollective::new(
                entry.field("label")?.as_str()?,
                collective_from_label(entry.field("collective")?.as_str()?)?,
                DataSize::from_bytes(entry.field("size_bytes")?.as_f64()? as u64),
            )
            .issued_at(entry.field("issue_ns")?.as_f64()?),
        );
    }
    Ok(StreamJob::named(value.field("name")?.as_str()?)
        .scheduler(scheduler_from_label(value.field("scheduler")?.as_str()?)?)
        .chunks(value.field("chunks")?.as_usize()?)
        .collectives(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_core::SchedulerKind;
    use themis_net::presets::PresetTopology;

    fn matrix() -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for preset in [PresetTopology::Sw2d, PresetTopology::SwSwSw3dHomo] {
            let platform = Platform::preset(preset);
            for mib in [16.0, 64.0] {
                for kind in SchedulerKind::all() {
                    specs.push(RunSpec::new(
                        platform.clone(),
                        Job::all_reduce_mib(mib).chunks(4).scheduler(kind),
                    ));
                }
            }
        }
        specs
    }

    #[test]
    fn round_robin_plans_deterministically() {
        let plan = ShardPlan::round_robin(7, 3);
        assert_eq!(plan.shard_count(), 3);
        assert_eq!(plan.cell_count(), 7);
        assert_eq!(plan.shard(0), &[0, 3, 6]);
        assert_eq!(plan.shard(1), &[1, 4]);
        assert_eq!(plan.shard(2), &[2, 5]);
        // Zero shards are clamped to one.
        assert_eq!(ShardPlan::round_robin(3, 0).shard_count(), 1);
        // The iterator walks the shards in order.
        assert_eq!(plan.iter().count(), 3);
    }

    #[test]
    fn cost_balancing_spreads_expensive_cells() {
        let plan = ShardPlan::cost_balanced(&[8.0, 8.0, 1.0, 1.0, 1.0, 1.0], 2);
        // The two expensive cells land on different shards.
        let shard_of = |cell: usize| (0..2).find(|&s| plan.shard(s).contains(&cell)).unwrap();
        assert_ne!(shard_of(0), shard_of(1));
        assert_eq!(plan.cell_count(), 6);
        // Every index appears exactly once across all shards.
        let mut all: Vec<usize> = plan.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
        // Degenerate costs stay deterministic and covered.
        let odd = ShardPlan::cost_balanced(&[f64::NAN, -3.0, 0.0], 2);
        assert_eq!(odd.cell_count(), 3);
    }

    #[test]
    fn strategies_cover_every_cell_even_with_surplus_shards() {
        let specs = matrix();
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::CostBalanced] {
            for shard_count in [1, 2, 5, specs.len() + 3] {
                let plan = strategy.plan(&specs, shard_count);
                assert_eq!(plan.shard_count(), shard_count);
                assert_eq!(plan.cell_count(), specs.len());
                let mut all: Vec<usize> = plan.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(all, (0..specs.len()).collect::<Vec<_>>());
                // Same inputs, same plan.
                assert_eq!(plan, strategy.plan(&specs, shard_count));
            }
        }
    }

    #[test]
    fn shard_specs_carry_their_slice_of_the_matrix() {
        let specs = matrix();
        let plan = ShardPlan::round_robin(specs.len(), 5);
        let shards = ShardSpec::campaign_shards(&specs, &plan).unwrap();
        assert_eq!(shards.len(), 5);
        for (index, shard) in shards.iter().enumerate() {
            assert_eq!(shard.shard_index(), index);
            assert_eq!(shard.shard_count(), 5);
            assert_eq!(shard.global_indices(), plan.shard(index));
            assert!(!shard.is_stream());
            assert!(!shard.is_empty());
        }
        let short_plan = ShardPlan::round_robin(3, 2);
        assert!(matches!(
            ShardSpec::campaign_shards(&specs, &short_plan),
            Err(ThemisError::Campaign { .. })
        ));
    }

    #[test]
    fn merge_rejects_inconsistent_partials() {
        let specs = matrix();
        let runner = Runner::sequential();
        let plan = ShardPlan::round_robin(specs.len(), 2);
        let shards = ShardSpec::campaign_shards(&specs, &plan).unwrap();
        let partials: Vec<ShardReport> =
            shards.iter().map(|s| s.execute(&runner).unwrap()).collect();

        assert!(matches!(
            merge_reports(&[]),
            Err(ThemisError::Campaign { .. })
        ));
        // Missing a shard.
        assert!(matches!(
            merge_reports(&partials[..1]),
            Err(ThemisError::Campaign { .. })
        ));
        // Duplicated shard.
        assert!(matches!(
            merge_reports(&[partials[0].clone(), partials[0].clone()]),
            Err(ThemisError::Campaign { .. })
        ));
        // Mixing plans of different shard counts.
        let other_plan = ShardPlan::round_robin(specs.len(), 3);
        let other = ShardSpec::campaign_shards(&specs, &other_plan).unwrap()[0]
            .execute(&runner)
            .unwrap();
        assert!(matches!(
            merge_reports(&[partials[0].clone(), other]),
            Err(ThemisError::Campaign { .. })
        ));
        // The happy path still merges.
        assert!(merge_reports(&partials).is_ok());
    }

    #[test]
    fn cache_stats_helpers() {
        let stats = CacheStats { hits: 3, misses: 1 };
        assert_eq!(stats.lookups(), 4);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
