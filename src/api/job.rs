//! The [`Job`] half of a run: the collective to execute and the scheduling
//! configuration to execute it with.

use crate::api::platform::Platform;
use crate::api::report::{RunConfig, RunResult};
use crate::error::ThemisError;
use std::sync::Arc;
use themis_collectives::CollectiveKind;
use themis_core::{
    CollectiveRequest, CollectiveSchedule, ScheduleCache, ScheduleError, SchedulerKind,
    SimPlanCache,
};
use themis_net::DataSize;
use themis_sim::{PipelineSimulator, SimReport, SimWorkspace};

/// The paper's default chunk granularity (64 chunks per collective).
pub const DEFAULT_CHUNKS: usize = 64;

/// A collective job: kind, per-NPU size, chunk granularity and the Table 3
/// scheduler configuration that turns it into an executable schedule.
///
/// Defaults: 64 chunks per collective and Themis+SCF scheduling.
///
/// ```
/// use themis::api::{Job, Platform};
/// use themis::{PresetTopology, SchedulerKind};
///
/// # fn main() -> Result<(), themis::ThemisError> {
/// let platform = Platform::preset(PresetTopology::Sw2d);
/// let result = Job::all_reduce_mib(64.0)
///     .chunks(16)
///     .scheduler(SchedulerKind::Baseline)
///     .run_on(&platform)?;
/// assert!(result.report.total_time_ns > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    kind: CollectiveKind,
    size: DataSize,
    chunks: usize,
    scheduler: SchedulerKind,
}

impl Job {
    /// Creates a job for a collective of `kind` over `size` bytes per NPU.
    pub fn new(kind: CollectiveKind, size: DataSize) -> Self {
        Job {
            kind,
            size,
            chunks: DEFAULT_CHUNKS,
            scheduler: SchedulerKind::ThemisScf,
        }
    }

    /// Convenience constructor for an All-Reduce of `size`.
    pub fn all_reduce(size: DataSize) -> Self {
        Job::new(CollectiveKind::AllReduce, size)
    }

    /// Convenience constructor for an All-Reduce of `mib` mebibytes.
    pub fn all_reduce_mib(mib: f64) -> Self {
        Job::all_reduce(DataSize::from_mib(mib))
    }

    /// Sets the number of chunks the collective is split into.
    #[must_use]
    pub fn chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks;
        self
    }

    /// Sets the scheduler configuration (Table 3).
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The collective pattern.
    pub fn kind(&self) -> CollectiveKind {
        self.kind
    }

    /// The per-NPU data size.
    pub fn size(&self) -> DataSize {
        self.size
    }

    /// The chunk granularity.
    pub fn chunk_count(&self) -> usize {
        self.chunks
    }

    /// The scheduler configuration.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler
    }

    /// The [`CollectiveRequest`] this job issues to the scheduler.
    pub fn request(&self) -> CollectiveRequest {
        CollectiveRequest::new(self.kind, self.size)
    }

    /// The [`RunConfig`] describing this job on `platform` (used to key
    /// results inside campaign reports).
    pub fn config_on(&self, platform: &Platform) -> RunConfig {
        RunConfig {
            topology: platform.name().to_string(),
            scheduler: self.scheduler,
            collective: self.kind,
            size: self.size,
            chunks: self.chunks,
        }
    }

    /// Schedules this job on `platform` without simulating it.
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Schedule`] for invalid requests (zero chunks,
    /// zero size) or topology mismatches.
    pub fn schedule_on(&self, platform: &Platform) -> Result<CollectiveSchedule, ThemisError> {
        // `SchedulerKind::build` uses the infallible constructors, which panic
        // on a zero chunk count; surface that as the scheduling error instead.
        if self.chunks == 0 {
            return Err(ThemisError::Schedule(ScheduleError::ZeroChunks));
        }
        let mut scheduler = self.scheduler.build(self.chunks);
        // Faults active at t = 0 fold into the bandwidths the scheduler sees
        // (see `Platform::scheduling_topology`); later events stay invisible.
        Ok(scheduler.schedule(&self.request(), platform.scheduling_topology()?.as_ref())?)
    }

    /// Like [`Job::schedule_on`], but served through a shared
    /// [`ScheduleCache`]: if an identical job (same topology structure,
    /// collective, chunk count and scheduler) was scheduled before, the cached
    /// schedule is returned without running the scheduler again. Schedulers
    /// are deterministic, so the result is bit-identical to [`Job::schedule_on`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Job::schedule_on`].
    pub fn schedule_on_cached(
        &self,
        platform: &Platform,
        cache: &ScheduleCache,
    ) -> Result<Arc<CollectiveSchedule>, ThemisError> {
        Ok(cache.get_or_schedule(
            platform.scheduling_topology()?.as_ref(),
            &self.request(),
            self.chunks,
            self.scheduler,
        )?)
    }

    /// Schedules *and* simulates this job on `platform`.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    pub fn run_on(&self, platform: &Platform) -> Result<RunResult, ThemisError> {
        let run = self.run_detailed(platform)?;
        Ok(RunResult {
            config: self.config_on(platform),
            report: run.report,
        })
    }

    /// Like [`Job::run_on`], but scheduling through a shared [`ScheduleCache`]
    /// (the campaign [`crate::api::Runner`] uses this for every cell unless
    /// caching is disabled). Reports are bit-identical to the uncached path.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    pub fn run_on_cached(
        &self,
        platform: &Platform,
        cache: &ScheduleCache,
    ) -> Result<RunResult, ThemisError> {
        let schedule = self.schedule_on_cached(platform, cache)?;
        let report =
            PipelineSimulator::new(platform.topology(), platform.options()).run(&schedule)?;
        Ok(RunResult {
            config: self.config_on(platform),
            report,
        })
    }

    /// The full precompiled-plan fast path: the schedule comes from the
    /// plan's [`ScheduleCache`], the per-op cost table from its
    /// [`themis_core::CostTableCache`], and the event-loop state from the
    /// caller's reusable [`SimWorkspace`]. This is what the campaign
    /// [`crate::api::Runner`] executes for every cell unless caching is
    /// disabled. Reports are bit-identical to [`Job::run_on`].
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    pub fn run_planned(
        &self,
        platform: &Platform,
        plan: &SimPlanCache,
        workspace: &mut SimWorkspace,
    ) -> Result<RunResult, ThemisError> {
        let schedule = {
            let _span = workspace.phase_schedule_span();
            self.schedule_on_cached(platform, plan.schedules())?
        };
        let simulator = PipelineSimulator::new(platform.topology(), platform.options());
        let table = {
            let _span = workspace.phase_cost_span();
            plan.cost_tables()
                .get_or_build(platform.topology(), simulator.cost_model(), &schedule)
                .map_err(ThemisError::from)?
        };
        let report =
            simulator.run_planned(&schedule, &table, workspace, Some(plan.cost_tables()))?;
        Ok(RunResult {
            config: self.config_on(platform),
            report,
        })
    }

    /// Like [`Job::run_on`], but also returns the [`CollectiveSchedule`] that
    /// was executed (for callers that inspect per-chunk dimension orders).
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    pub fn run_detailed(&self, platform: &Platform) -> Result<ScheduledRun, ThemisError> {
        let schedule = self.schedule_on(platform)?;
        let report =
            PipelineSimulator::new(platform.topology(), platform.options()).run(&schedule)?;
        Ok(ScheduledRun { schedule, report })
    }
}

/// The full outcome of one job run: the executed schedule and its simulation
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledRun {
    /// The schedule the scheduler emitted (per-chunk dimension orders).
    pub schedule: CollectiveSchedule,
    /// The simulation report of executing that schedule.
    pub report: SimReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_net::presets::PresetTopology;

    #[test]
    fn defaults_match_the_paper() {
        let job = Job::all_reduce_mib(256.0);
        assert_eq!(job.chunk_count(), DEFAULT_CHUNKS);
        assert_eq!(job.scheduler_kind(), SchedulerKind::ThemisScf);
        assert_eq!(job.kind(), CollectiveKind::AllReduce);
        assert_eq!(job.size(), DataSize::from_mib(256.0));
    }

    #[test]
    fn run_detailed_returns_matching_schedule_and_report() {
        let platform = Platform::preset(PresetTopology::Sw2d);
        let job = Job::all_reduce_mib(64.0).chunks(8);
        let run = job.run_detailed(&platform).unwrap();
        assert_eq!(run.schedule.chunks().len(), 8);
        assert_eq!(run.report.scheduler_name, "Themis+SCF");
        assert!(run.report.total_time_ns > 0.0);
    }

    #[test]
    fn cached_runs_match_uncached_runs_bit_for_bit() {
        let platform = Platform::preset(PresetTopology::SwSwSw3dHetero);
        let cache = ScheduleCache::new();
        for kind in SchedulerKind::all() {
            let job = Job::all_reduce_mib(96.0).chunks(8).scheduler(kind);
            let cached = job.run_on_cached(&platform, &cache).unwrap();
            let direct = job.run_on(&platform).unwrap();
            assert_eq!(cached, direct, "{kind}");
            // A second cached run hits and stays identical.
            let again = job.run_on_cached(&platform, &cache).unwrap();
            assert_eq!(again, direct);
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 3);
        // Cached scheduling surfaces the same errors.
        let err = Job::all_reduce_mib(96.0)
            .chunks(0)
            .run_on_cached(&platform, &cache)
            .unwrap_err();
        assert!(matches!(err, ThemisError::Schedule(_)));
    }

    #[test]
    fn scheduling_errors_surface_as_themis_errors() {
        let platform = Platform::preset(PresetTopology::Sw2d);
        let err = Job::all_reduce_mib(64.0)
            .chunks(0)
            .run_on(&platform)
            .unwrap_err();
        assert!(matches!(err, ThemisError::Schedule(_)));
    }
}
