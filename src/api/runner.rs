//! Campaign execution backends: a sequential runner and a dependency-free
//! multi-threaded runner built on `std::thread::scope`.
//!
//! Both backends produce *identical* output for the same spec list: results
//! are returned in spec order and every simulation is deterministic, so the
//! parallel backend is a pure wall-clock optimisation.

use crate::api::job::Job;
use crate::api::platform::Platform;
use crate::api::report::RunResult;
use crate::api::stream::{StreamRunResult, StreamSpec};
use crate::error::ThemisError;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use themis_core::SimPlanCache;
use themis_sim::SimWorkspace;

/// One cell of an expanded campaign matrix: a [`Job`] bound to a [`Platform`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// The platform the job runs on.
    pub platform: Platform,
    /// The job to run.
    pub job: Job,
}

impl RunSpec {
    /// Creates a run spec.
    pub fn new(platform: Platform, job: Job) -> Self {
        RunSpec { platform, job }
    }

    /// Executes the spec: schedules and simulates the job on the platform.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    pub fn execute(&self) -> Result<RunResult, ThemisError> {
        self.job.run_on(&self.platform)
    }
}

/// A self-contained campaign cell a [`Runner`] can dispatch: it executes on
/// its own (optionally through a shared [`SimPlanCache`]) and produces one
/// result. Implemented by [`RunSpec`] (single collectives) and
/// [`StreamSpec`] (collective streams), so the worker-pool scaffolding and
/// the sharding layer ([`crate::api::shard`]) are written once for both.
pub trait CampaignCell: Sync {
    /// The per-cell result type.
    type Output: Send;

    /// Executes the cell.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    fn execute(&self) -> Result<Self::Output, ThemisError>;

    /// Executes the cell through a shared precompiled [`SimPlanCache`]
    /// (schedules *and* per-op cost tables memoised) on the worker's reusable
    /// [`SimWorkspace`]. Bit-identical to [`CampaignCell::execute`].
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors as [`ThemisError`].
    fn execute_planned(
        &self,
        plan: &SimPlanCache,
        workspace: &mut SimWorkspace,
    ) -> Result<Self::Output, ThemisError>;

    /// A deterministic estimate of the cell's relative simulation cost, used
    /// by [`crate::api::shard::ShardStrategy::CostBalanced`] to balance
    /// shards. The absolute scale is meaningless; only ratios between cells
    /// of one matrix matter. The default counts simulated chunk operations
    /// (the dominant per-cell cost) plus a small size term.
    fn cost_estimate(&self) -> f64;
}

impl CampaignCell for RunSpec {
    type Output = RunResult;

    fn execute(&self) -> Result<RunResult, ThemisError> {
        RunSpec::execute(self)
    }

    fn execute_planned(
        &self,
        plan: &SimPlanCache,
        workspace: &mut SimWorkspace,
    ) -> Result<RunResult, ThemisError> {
        self.job.run_planned(&self.platform, plan, workspace)
    }

    fn cost_estimate(&self) -> f64 {
        let stages = self
            .job
            .kind()
            .num_stages(self.platform.topology().num_dims());
        (self.job.chunk_count() * stages) as f64 + self.job.size().as_bytes_f64() * 1e-6
    }
}

impl CampaignCell for StreamSpec {
    type Output = StreamRunResult;

    fn execute(&self) -> Result<StreamRunResult, ThemisError> {
        StreamSpec::execute(self)
    }

    fn execute_planned(
        &self,
        plan: &SimPlanCache,
        workspace: &mut SimWorkspace,
    ) -> Result<StreamRunResult, ThemisError> {
        self.job.run_planned(&self.platform, plan, workspace)
    }

    fn cost_estimate(&self) -> f64 {
        let dims = self.platform.topology().num_dims();
        let chunks = self.job.chunk_count() as f64;
        self.job
            .entries()
            .iter()
            .map(|entry| {
                chunks * entry.kind().num_stages(dims) as f64 + entry.size().as_bytes_f64() * 1e-6
            })
            .sum()
    }
}

/// Forwarding impl so shard execution can dispatch borrowed cells without
/// deep-cloning every spec per run (each `RunSpec` clone copies its whole
/// `Platform`, topology included).
impl<C: CampaignCell> CampaignCell for &C {
    type Output = C::Output;

    fn execute(&self) -> Result<Self::Output, ThemisError> {
        C::execute(self)
    }

    fn execute_planned(
        &self,
        plan: &SimPlanCache,
        workspace: &mut SimWorkspace,
    ) -> Result<Self::Output, ThemisError> {
        C::execute_planned(self, plan, workspace)
    }

    fn cost_estimate(&self) -> f64 {
        C::cost_estimate(self)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Sequential,
    Parallel { threads: Option<NonZeroUsize> },
}

/// Upper bound on idle pooled workspaces; returns beyond the cap are dropped
/// so a one-off wide parallel run does not pin its peak working set forever.
const WORKSPACE_POOL_CAP: usize = 32;

/// Process-wide pool of reusable [`SimWorkspace`]s.
///
/// `Runner` is a `Copy` configuration value that callers freely re-create per
/// campaign, so the pool — not the runner — is what carries event-loop
/// buffers and the op-matrix memo across executions. Checkout order is
/// arbitrary; workspaces are pure caches, so which one a worker gets never
/// affects results.
static WORKSPACE_POOL: Mutex<Vec<SimWorkspace>> = Mutex::new(Vec::new());

fn checkout_workspace() -> SimWorkspace {
    WORKSPACE_POOL
        .lock()
        .ok()
        .and_then(|mut pool| pool.pop())
        .unwrap_or_default()
}

fn checkin_workspace(workspace: SimWorkspace) {
    if let Ok(mut pool) = WORKSPACE_POOL.lock() {
        if pool.len() < WORKSPACE_POOL_CAP {
            pool.push(workspace);
        }
    }
}

/// Executes a list of [`RunSpec`]s and collects their [`RunResult`]s in spec
/// order.
///
/// The parallel backend distributes specs over a pool of worker threads with
/// an atomic work index (the heavy simulations dominate, so dynamic
/// distribution beats static chunking when cell costs are skewed). Reports
/// are bit-identical to the sequential backend's.
///
/// By default every execution shares one precompiled [`SimPlanCache`] across
/// its cells and workers: cells that agree on (topology structure,
/// collective, chunks, scheduler) schedule once, cells whose schedules price
/// identically (including Themis+FIFO vs Themis+SCF) share one per-op cost
/// table, stream cells stop re-scheduling identical queued collectives, and
/// every worker reuses one [`SimWorkspace`] across the cells it claims.
/// Schedulers and the cost model are deterministic, so cached runs are
/// bit-identical to uncached ones; disable with
/// [`Runner::with_schedule_cache`] to measure or debug the uncached path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    backend: Backend,
    cache_schedules: bool,
}

impl Runner {
    /// A runner that executes specs one after the other on the calling thread.
    pub fn sequential() -> Self {
        Runner {
            backend: Backend::Sequential,
            cache_schedules: true,
        }
    }

    /// A runner that executes specs on one worker thread per available core.
    pub fn parallel() -> Self {
        Runner {
            backend: Backend::Parallel { threads: None },
            cache_schedules: true,
        }
    }

    /// A parallel runner with an explicit worker-thread count (values of zero
    /// are treated as one).
    pub fn parallel_threads(threads: usize) -> Self {
        Runner {
            backend: Backend::Parallel {
                threads: NonZeroUsize::new(threads.max(1)),
            },
            cache_schedules: true,
        }
    }

    /// Enables or disables the shared per-execution [`SimPlanCache`]
    /// (enabled by default; reports are bit-identical either way).
    #[must_use]
    pub fn with_schedule_cache(mut self, enabled: bool) -> Self {
        self.cache_schedules = enabled;
        self
    }

    /// `true` if executions share a precompiled plan cache across cells and
    /// workers.
    pub fn caches_schedules(&self) -> bool {
        self.cache_schedules
    }

    /// `true` if this runner uses worker threads.
    pub fn is_parallel(&self) -> bool {
        matches!(self.backend, Backend::Parallel { .. })
    }

    /// The number of worker threads this runner would use for `jobs` specs.
    pub fn worker_count(&self, jobs: usize) -> usize {
        match self.backend {
            Backend::Sequential => 1,
            Backend::Parallel { threads } => {
                let available = threads
                    .or_else(|| std::thread::available_parallelism().ok())
                    .map_or(1, NonZeroUsize::get);
                available.min(jobs).max(1)
            }
        }
    }

    /// Executes `specs` and returns their results in spec order.
    ///
    /// # Errors
    ///
    /// Returns the first error in spec order. Workers stop claiming new cells
    /// once any cell has errored (cells already in flight still finish), so a
    /// failing campaign does not execute its whole remaining matrix just to
    /// discard it.
    pub fn execute(&self, specs: &[RunSpec]) -> Result<Vec<RunResult>, ThemisError> {
        self.execute_cells(specs, None)
    }

    /// Executes stream-campaign cells ([`StreamSpec`]s) and returns their
    /// results in spec order. Both backends produce bit-identical reports.
    ///
    /// # Errors
    ///
    /// Returns the first error in spec order, as for [`Runner::execute`].
    pub fn execute_streams(
        &self,
        specs: &[StreamSpec],
    ) -> Result<Vec<StreamRunResult>, ThemisError> {
        self.execute_cells(specs, None)
    }

    /// Executes cells through a caller-provided [`SimPlanCache`] instead of a
    /// per-execution one: the sharding layer uses this to warm-start workers
    /// from a dumped schedule-cache file and to read hit/miss statistics
    /// after the run, and figure suites use it to share one warm plan across
    /// several campaigns. The plan is always consulted, regardless of
    /// [`Runner::with_schedule_cache`] (reports are bit-identical either
    /// way).
    ///
    /// # Errors
    ///
    /// Returns the first error in spec order, as for [`Runner::execute`].
    pub fn execute_with_cache<C: CampaignCell>(
        &self,
        specs: &[C],
        plan: &SimPlanCache,
    ) -> Result<Vec<C::Output>, ThemisError> {
        self.execute_cells(specs, Some(plan))
    }

    /// Shared dispatch of [`Runner::execute`] / [`Runner::execute_streams`] /
    /// [`Runner::execute_with_cache`]: picks the caching mode, then runs the
    /// cells through the worker-pool scaffolding.
    fn execute_cells<C: CampaignCell>(
        &self,
        specs: &[C],
        warm: Option<&SimPlanCache>,
    ) -> Result<Vec<C::Output>, ThemisError> {
        match warm {
            Some(plan) => self.execute_tasks(specs, |spec, ws| spec.execute_planned(plan, ws)),
            None if self.cache_schedules => {
                let plan = SimPlanCache::new();
                self.execute_tasks(specs, |spec, ws| spec.execute_planned(&plan, ws))
            }
            None => self.execute_tasks(specs, |spec, _ws| spec.execute()),
        }
    }

    /// Shared backend: runs `execute` over `items` sequentially or on the
    /// worker pool, collecting results in item order. Every worker checks one
    /// reusable [`SimWorkspace`] out of the process-wide pool, so event-loop
    /// allocations and memoised op matrices amortise across the cells it
    /// claims *and* across repeated executions.
    fn execute_tasks<T, R>(
        &self,
        items: &[T],
        execute: impl Fn(&T, &mut SimWorkspace) -> Result<R, ThemisError> + Sync,
    ) -> Result<Vec<R>, ThemisError>
    where
        T: Sync,
        R: Send,
    {
        let workers = match self.backend {
            Backend::Sequential => 1,
            Backend::Parallel { .. } => self.worker_count(items.len()),
        };
        if workers <= 1 || items.len() <= 1 {
            let mut workspace = checkout_workspace();
            // `collect` into a `Result` short-circuits at the first error.
            let results = items
                .iter()
                .map(|item| execute(item, &mut workspace))
                .collect();
            checkin_workspace(workspace);
            return results;
        }
        let next = AtomicUsize::new(0);
        let errored = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<Result<R, ThemisError>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut workspace = checkout_workspace();
                    loop {
                        // Early exit: once any cell errors, stop claiming new
                        // cells instead of executing the rest of the matrix
                        // and discarding it.
                        if errored.load(Ordering::Relaxed) {
                            break;
                        }
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else { break };
                        let result = execute(item, &mut workspace);
                        if result.is_err() {
                            errored.store(true, Ordering::Relaxed);
                        }
                        // Each slot is written by exactly one worker; the
                        // mutex only publishes the write to the collecting
                        // thread.
                        *slots[index]
                            .lock()
                            .expect("no panics while holding the slot lock") = Some(result);
                    }
                    checkin_workspace(workspace);
                });
            }
        });
        let mut results = Vec::with_capacity(items.len());
        for slot in slots {
            let value = slot
                .into_inner()
                .expect("worker threads joined without panicking");
            match value {
                Some(Ok(result)) => results.push(result),
                Some(Err(err)) => return Err(err),
                // The atomic work index hands out indices in order and every
                // claimed cell is finished, so a skipped slot can only appear
                // *after* the first errored slot — which was returned above.
                None => unreachable!("cells are only skipped after an earlier error"),
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_core::SchedulerKind;
    use themis_net::presets::PresetTopology;

    fn specs() -> Vec<RunSpec> {
        let platform = Platform::preset(PresetTopology::Sw2d);
        SchedulerKind::all()
            .into_iter()
            .map(|kind| {
                RunSpec::new(
                    platform.clone(),
                    Job::all_reduce_mib(32.0).chunks(8).scheduler(kind),
                )
            })
            .collect()
    }

    #[test]
    fn sequential_and_parallel_agree_bit_for_bit() {
        let specs = specs();
        let sequential = Runner::sequential().execute(&specs).unwrap();
        let parallel = Runner::parallel_threads(3).execute(&specs).unwrap();
        assert_eq!(sequential, parallel);
        // Order matches the spec list, not completion order.
        for (spec, result) in specs.iter().zip(&sequential) {
            assert_eq!(spec.job.scheduler_kind(), result.config.scheduler);
        }
    }

    #[test]
    fn errors_propagate_in_spec_order() {
        let platform = Platform::preset(PresetTopology::Sw2d);
        let mut specs = specs();
        specs.insert(
            1,
            RunSpec::new(platform, Job::all_reduce_mib(32.0).chunks(0)),
        );
        for runner in [Runner::sequential(), Runner::parallel_threads(2)] {
            let err = runner.execute(&specs).unwrap_err();
            assert!(matches!(err, ThemisError::Schedule(_)), "{runner:?}");
        }
    }

    #[test]
    fn schedule_cache_toggle_does_not_change_results() {
        let specs = specs();
        let cached = Runner::parallel_threads(2).execute(&specs).unwrap();
        let uncached = Runner::parallel_threads(2)
            .with_schedule_cache(false)
            .execute(&specs)
            .unwrap();
        assert_eq!(cached, uncached);
        assert!(Runner::sequential().caches_schedules());
        assert!(!Runner::sequential()
            .with_schedule_cache(false)
            .caches_schedules());
    }

    #[test]
    fn execute_with_cache_matches_and_counts() {
        let specs = specs();
        let plan = SimPlanCache::new();
        let warm = Runner::parallel_threads(2)
            .execute_with_cache(&specs, &plan)
            .unwrap();
        assert_eq!(warm, Runner::sequential().execute(&specs).unwrap());
        let schedules = plan.schedules();
        assert_eq!((schedules.hits(), schedules.misses()), (0, 3));
        // The two Themis variants share one cost table.
        assert_eq!(plan.cost_tables().len(), 2);
        // A second execution over the same plan is served entirely from it.
        let again = Runner::sequential()
            .execute_with_cache(&specs, &plan)
            .unwrap();
        assert_eq!(again, warm);
        assert_eq!((schedules.hits(), schedules.misses()), (3, 3));
        assert_eq!(plan.cost_tables().misses(), 2);
    }

    #[test]
    fn borrowed_cells_execute_like_owned_cells() {
        let specs = specs();
        let refs: Vec<&RunSpec> = specs.iter().collect();
        let plan = SimPlanCache::new();
        let borrowed = Runner::sequential()
            .execute_with_cache(&refs, &plan)
            .unwrap();
        assert_eq!(borrowed, Runner::sequential().execute(&specs).unwrap());
        for (spec, r) in specs.iter().zip(&refs) {
            assert_eq!(spec.cost_estimate(), r.cost_estimate());
        }
    }

    #[test]
    fn worker_counts_are_bounded() {
        assert_eq!(Runner::sequential().worker_count(10), 1);
        assert_eq!(Runner::parallel_threads(4).worker_count(2), 2);
        assert_eq!(Runner::parallel_threads(0).worker_count(10), 1);
        assert!(Runner::parallel().worker_count(64) >= 1);
        assert!(!Runner::sequential().is_parallel());
        assert!(Runner::parallel().is_parallel());
    }
}
