//! The [`Platform`] half of a run: a concrete network topology plus the
//! simulator options it is evaluated with.

use crate::error::ThemisError;
use std::borrow::Cow;
use themis_net::presets::{preset_by_name, PresetTopology};
use themis_net::NetworkTopology;
use themis_sim::SimOptions;

/// An evaluation platform: a [`NetworkTopology`] (preset or custom) bundled
/// with the [`SimOptions`] used to execute collectives on it.
///
/// ```
/// use themis::api::Platform;
/// use themis::PresetTopology;
///
/// let platform = Platform::preset(PresetTopology::SwSwSw3dHomo);
/// assert_eq!(platform.name(), "3D-SW_SW_SW_homo");
/// assert_eq!(platform.topology().num_npus(), 1024);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    topology: NetworkTopology,
    options: SimOptions,
}

impl Platform {
    /// Creates a platform from one of the paper's preset topologies
    /// (Table 2 plus the current-generation reference system).
    pub fn preset(preset: PresetTopology) -> Self {
        Platform::custom(preset.build())
    }

    /// Creates a platform from a preset looked up by its paper name
    /// (e.g. `"3D-FC_Ring_SW"`, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Net`] if the name matches no preset.
    pub fn named(name: &str) -> Result<Self, ThemisError> {
        Ok(Platform::custom(preset_by_name(name)?))
    }

    /// Creates a platform from an arbitrary topology.
    pub fn custom(topology: NetworkTopology) -> Self {
        Platform {
            topology,
            options: SimOptions::default(),
        }
    }

    /// Replaces the simulator options.
    #[must_use]
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Convenience: toggles intra-dimension order enforcement (Sec. 4.6.2)
    /// on the current options.
    #[must_use]
    pub fn with_enforced_order(mut self, enforce: bool) -> Self {
        self.options = self.options.with_enforced_order(enforce);
        self
    }

    /// The platform's topology name.
    pub fn name(&self) -> &str {
        self.topology.name()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// The fabric as the schedulers see it: fault events active at t = 0 (a
    /// permanently degraded link is *static* asymmetry — exactly what a
    /// bandwidth-aware scheduler exists to exploit) fold into the dimension
    /// bandwidths; later events stay invisible, so mid-stream faults remain
    /// unforeseen. Without t = 0 degradation this borrows the topology
    /// untouched, keeping fault-free scheduling on its exact original path.
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Sim`] if the fault plan does not fit the
    /// topology.
    pub fn scheduling_topology(&self) -> Result<Cow<'_, NetworkTopology>, ThemisError> {
        Ok(
            match self.options.faults.initial_topology(&self.topology)? {
                Some(degraded) => Cow::Owned(degraded),
                None => Cow::Borrowed(&self.topology),
            },
        )
    }

    /// The simulator options collectives run with on this platform.
    pub fn options(&self) -> SimOptions {
        self.options.clone()
    }

    /// Convenience: installs a fault schedule ([`themis_sim::FaultPlan`]) on
    /// the current options — mid-stream bandwidth degradation, link failure
    /// and recovery at fixed simulated times.
    #[must_use]
    pub fn with_faults(mut self, faults: themis_sim::FaultPlan) -> Self {
        self.options = self.options.with_faults(faults);
        self
    }
}

impl From<PresetTopology> for Platform {
    fn from(preset: PresetTopology) -> Self {
        Platform::preset(preset)
    }
}

impl From<NetworkTopology> for Platform {
    fn from(topology: NetworkTopology) -> Self {
        Platform::custom(topology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_and_named_agree() {
        let by_enum = Platform::preset(PresetTopology::FcRingSw3d);
        let by_name = Platform::named("3D-FC_Ring_SW").unwrap();
        assert_eq!(by_enum, by_name);
        assert!(matches!(
            Platform::named("not-a-platform"),
            Err(ThemisError::Net(_))
        ));
    }

    #[test]
    fn options_are_carried() {
        let platform = Platform::preset(PresetTopology::Sw2d)
            .with_options(SimOptions::default().with_max_concurrent_ops(2))
            .with_enforced_order(true);
        assert_eq!(platform.options().max_concurrent_ops_per_dim, 2);
        assert!(platform.options().enforce_intra_dim_order);
    }
}
