//! The high-level experiment API of the reproduction.
//!
//! The paper's whole evaluation is *campaign-shaped*: every figure sweeps
//! schedulers × topologies × collective sizes × chunk counts. This module
//! turns that shape into a first-class, data-driven API so callers never
//! hand-wire the schedule-then-simulate pipeline:
//!
//! * [`Platform`] — a preset or custom topology plus its [`themis_sim::SimOptions`].
//! * [`Job`] — one collective (kind, size, chunks, scheduler); [`TrainingJob`]
//!   is the analogue for full training iterations.
//! * [`Campaign`] — a builder over the evaluation axes that expands into a run
//!   matrix of [`RunSpec`]s.
//! * [`StreamJob`] / [`StreamCampaign`] — queued multi-collective work for the
//!   streaming queue engine ([`stream`]): a stream of collectives with issue
//!   times that overlap in flight, derived by hand or from a training job's
//!   layer graph.
//! * [`Runner`] — executes a matrix sequentially or on a thread pool; both
//!   backends return bit-identical [`RunResult`]s in matrix order.
//! * [`shard`] — cross-process campaign sharding: partition an expanded
//!   matrix into self-contained, JSON-serializable [`ShardSpec`]s, execute
//!   them anywhere, and [`merge_reports`] back into a report bit-identical
//!   to the unsharded run.
//! * [`serve`] — the resident campaign service: a long-lived [`Service`]
//!   answering JSONL requests against one persistent warm plan cache, with
//!   single-flight dedup of identical cells across concurrent requests.
//! * [`orchestrator`] — multi-process sweep supervision: spawn one
//!   `shard-worker` per shard, watch heartbeats, retry failures with bounded
//!   backoff, and merge partial reports bit-identically.
//! * [`CampaignReport`] — the collected results, with lookups, speedup
//!   helpers and dependency-free JSON serialization ([`json`]).
//!
//! Every entry point returns `Result<_, `[`ThemisError`]`>`.
//!
//! ```
//! use themis::prelude::*;
//!
//! # fn main() -> Result<(), ThemisError> {
//! let report = Campaign::new()
//!     .topologies([PresetTopology::Sw2d])
//!     .schedulers([SchedulerKind::Baseline, SchedulerKind::ThemisScf])
//!     .sizes_mib([64.0])
//!     .chunk_counts([16])
//!     .run(&Runner::sequential())?;
//! let speedup = report
//!     .speedup_over_baseline("2D-SW_SW", DataSize::from_mib(64.0), SchedulerKind::ThemisScf)
//!     .expect("both cells ran");
//! assert!(speedup >= 1.0);
//! # Ok(())
//! # }
//! ```

pub mod campaign;
pub mod job;
pub mod json;
pub mod orchestrator;
pub mod platform;
pub mod report;
pub mod runner;
pub mod serve;
pub mod shard;
pub mod stream;
pub mod training;

pub use crate::error::ThemisError;
pub use campaign::Campaign;
pub use job::{Job, ScheduledRun, DEFAULT_CHUNKS};
pub use orchestrator::{Orchestrator, OrchestratorOptions, ShardPerf, SweepOutcome};
pub use platform::Platform;
pub use report::{CampaignReport, RunConfig, RunResult};
pub use runner::{CampaignCell, RunSpec, Runner};
pub use serve::{ServeOptions, Service};
pub use shard::{
    merge_reports, CacheStats, MergedReport, MergedResults, ShardPlan, ShardReport, ShardSpec,
    ShardStrategy,
};
pub use stream::{
    QueuedCollective, StreamCampaign, StreamCampaignReport, StreamJob, StreamRunConfig,
    StreamRunResult, StreamSpec,
};
pub use training::TrainingJob;
