//! Training-iteration runs through the facade: the Fig. 12 scenario as a
//! builder, mirroring [`crate::api::Job`] for collectives.

use crate::api::platform::Platform;
use crate::error::ThemisError;
use themis_core::SimPlanCache;
use themis_sim::SimWorkspace;
use themis_workloads::{CommunicationPolicy, IterationBreakdown, TrainingSimulator, Workload};

/// A training-iteration job: one paper workload simulated under a
/// communication scheduling policy.
///
/// ```
/// use themis::api::{Platform, TrainingJob};
/// use themis::{CommunicationPolicy, PresetTopology, Workload};
///
/// # fn main() -> Result<(), themis::ThemisError> {
/// let platform = Platform::preset(PresetTopology::SwSwSw3dHomo);
/// let themis = TrainingJob::new(Workload::ResNet152).run_on(&platform)?;
/// let baseline = TrainingJob::new(Workload::ResNet152)
///     .policy(CommunicationPolicy::Baseline)
///     .run_on(&platform)?;
/// assert!(themis.total_ns() <= baseline.total_ns());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrainingJob {
    workload: Workload,
    policy: CommunicationPolicy,
}

impl TrainingJob {
    /// Creates a training job for `workload` (default policy: Themis+SCF).
    pub fn new(workload: Workload) -> Self {
        TrainingJob {
            workload,
            policy: CommunicationPolicy::ThemisScf,
        }
    }

    /// Sets the communication scheduling policy.
    #[must_use]
    pub fn policy(mut self, policy: CommunicationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The workload this job trains.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The communication scheduling policy.
    pub fn policy_kind(&self) -> CommunicationPolicy {
        self.policy
    }

    /// Simulates one training iteration on `platform` and returns the
    /// latency breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`ThemisError::Workload`] if the workload's parallelization
    /// strategy cannot be mapped onto the platform's topology.
    pub fn run_on(&self, platform: &Platform) -> Result<IterationBreakdown, ThemisError> {
        Ok(TrainingSimulator::new(self.workload.config())
            .with_sim_options(platform.options())
            .simulate_iteration(platform.topology(), self.policy)?)
    }

    /// Like [`TrainingJob::run_on`], but scheduling every collective of the
    /// iteration through a shared [`SimPlanCache`] on a reusable
    /// [`SimWorkspace`] — training sweeps that revisit the same (platform,
    /// policy) cells schedule and cost each distinct collective once across
    /// the whole sweep. Results are bit-identical to [`TrainingJob::run_on`].
    ///
    /// # Errors
    ///
    /// Same contract as [`TrainingJob::run_on`].
    pub fn run_planned(
        &self,
        platform: &Platform,
        plan: &SimPlanCache,
        workspace: &mut SimWorkspace,
    ) -> Result<IterationBreakdown, ThemisError> {
        Ok(TrainingSimulator::new(self.workload.config())
            .with_sim_options(platform.options())
            .simulate_iteration_planned(platform.topology(), self.policy, plan, workspace)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_net::presets::PresetTopology;

    #[test]
    fn policies_are_ordered_on_a_next_gen_platform() {
        let platform = Platform::preset(PresetTopology::SwSwSw3dHetero);
        let job = TrainingJob::new(Workload::Gnmt);
        assert_eq!(job.policy_kind(), CommunicationPolicy::ThemisScf);
        assert_eq!(job.workload(), Workload::Gnmt);
        let baseline = job
            .policy(CommunicationPolicy::Baseline)
            .run_on(&platform)
            .unwrap();
        let themis = job.run_on(&platform).unwrap();
        let ideal = job
            .policy(CommunicationPolicy::Ideal)
            .run_on(&platform)
            .unwrap();
        assert!(themis.total_ns() <= baseline.total_ns() * 1.0001);
        assert!(ideal.total_ns() <= themis.total_ns() * 1.0001);
    }
}
