//! A minimal, dependency-free JSON representation used to serialize campaign
//! reports, shard specs and schedule-cache dumps.
//!
//! The build environment of this reproduction is fully offline, so the usual
//! `serde`/`serde_json` pair is unavailable (the workspace's `serde` feature
//! is a stub gate). The implementation lives in [`themis_core::json`] — so the
//! core crate's [`themis_core::ScheduleCache::dump`] /
//! [`themis_core::ScheduleCache::load`] speak the same format as the facade's
//! campaign reports — and is re-exported here under its historical path.
//! [`JsonError`]s convert into [`crate::error::ThemisError::Json`], so `?`
//! works across the whole API surface.

pub use themis_core::json::{Json, JsonError};
