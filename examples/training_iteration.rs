//! End-to-end training-iteration breakdown (the Fig. 12 scenario): simulate
//! one training iteration of each paper workload on a chosen platform under
//! the baseline, Themis+SCF and the ideal bound, and print the latency
//! decomposition.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example training_iteration [topology-name]
//! ```
//!
//! The optional argument is a Table 2 topology name
//! (default: `3D-SW_SW_SW_hetero`).

use themis::prelude::*;

fn main() -> Result<(), ThemisError> {
    let topo_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "3D-SW_SW_SW_hetero".to_string());
    let platform = Platform::named(&topo_name).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        eprintln!("valid topology names:");
        for preset in PresetTopology::all() {
            eprintln!("  {}", preset.name());
        }
        std::process::exit(2);
    });
    println!("platform: {}", platform.topology());
    println!();

    for workload in Workload::all() {
        println!(
            "=== {workload} (per-NPU mini-batch {}, {}) ===",
            workload.per_npu_minibatch(),
            workload.strategy()
        );
        let mut baseline_total = None;
        for policy in CommunicationPolicy::fig12_rows() {
            let b = TrainingJob::new(workload)
                .policy(policy)
                .run_on(&platform)?;
            let total_ms = b.total_ns() / 1e6;
            let norm = baseline_total.map(|t: f64| b.total_ns() / t).unwrap_or(1.0);
            if baseline_total.is_none() {
                baseline_total = Some(b.total_ns());
            }
            println!(
                "  {:<11}  fwd {:8.2} ms | bwd {:8.2} ms | MP comm {:8.2} ms | DP comm {:8.2} ms \
                 | total {:8.2} ms | norm {:.3}",
                policy.label(),
                b.forward_compute_ns / 1e6,
                b.backward_compute_ns / 1e6,
                b.exposed_mp_comm_ns / 1e6,
                b.exposed_dp_comm_ns / 1e6,
                total_ms,
                norm
            );
        }
        println!();
    }
    Ok(())
}
