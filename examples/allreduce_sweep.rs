//! All-Reduce microbenchmark sweep (the Fig. 8 / Fig. 11 scenario): a single
//! campaign over all six next-generation platforms of Table 2, four collective
//! sizes and the three Table 3 schedulers — executed twice, once sequentially
//! and once on the parallel runner, to show that the backends agree
//! bit-for-bit while the parallel one uses every core.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example allreduce_sweep
//! ```

use std::time::Instant;
use themis::prelude::*;

fn main() -> Result<(), ThemisError> {
    let sizes = [
        DataSize::from_mib(100.0),
        DataSize::from_mib(256.0),
        DataSize::from_mib(512.0),
        DataSize::from_gib(1.0),
    ];
    let campaign = Campaign::new()
        .topologies(PresetTopology::next_generation())
        .sizes(sizes)
        .chunk_counts([64]);
    println!(
        "campaign matrix: {} platforms x {} sizes x 3 schedulers = {} runs",
        PresetTopology::next_generation().len(),
        sizes.len(),
        campaign.matrix_size()
    );

    let started = Instant::now();
    let sequential = campaign.run(&Runner::sequential())?;
    let sequential_elapsed = started.elapsed();

    let parallel_runner = Runner::parallel();
    let started = Instant::now();
    let report = campaign.run(&parallel_runner)?;
    let parallel_elapsed = started.elapsed();

    assert_eq!(
        report, sequential,
        "parallel and sequential reports must be bit-identical"
    );
    println!(
        "sequential runner: {:.2} s, parallel runner ({} workers): {:.2} s\n",
        sequential_elapsed.as_secs_f64(),
        parallel_runner.worker_count(campaign.matrix_size()),
        parallel_elapsed.as_secs_f64()
    );

    println!(
        "{:<22} {:>9} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "topology", "size", "baseline (us)", "fifo (us)", "scf (us)", "speedup", "scf util"
    );
    for preset in PresetTopology::next_generation() {
        for &size in &sizes {
            let cell = |kind| report.find(preset.name(), kind, size).expect("cell ran");
            let baseline = cell(SchedulerKind::Baseline);
            let fifo = cell(SchedulerKind::ThemisFifo);
            let scf = cell(SchedulerKind::ThemisScf);
            println!(
                "{:<22} {:>6.0} MB {:>14.1} {:>14.1} {:>14.1} {:>8.2}x {:>8.1}%",
                preset.name(),
                size.as_mib(),
                baseline.total_time_us(),
                fifo.total_time_us(),
                scf.total_time_us(),
                baseline.total_time_ns() / scf.total_time_ns(),
                scf.average_bw_utilization() * 100.0
            );
        }
    }

    let speedups = report.speedups_over_baseline(SchedulerKind::ThemisScf);
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
    println!();
    println!(
        "Themis+SCF speedup over baseline: {mean:.2}x mean, {max:.2}x max \
         (paper reports 1.72x mean, 2.70x max)"
    );
    Ok(())
}
