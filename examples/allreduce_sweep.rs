//! All-Reduce microbenchmark sweep (the Fig. 8 / Fig. 11 scenario): compare
//! the baseline, Themis+FIFO and Themis+SCF across collective sizes and all
//! six next-generation platforms of Table 2.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example allreduce_sweep
//! ```

use themis::net::presets::next_generation_suite;
use themis::{CollectiveExecutor, CollectiveRequest, DataSize, SchedulerKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes = [
        DataSize::from_mib(100.0),
        DataSize::from_mib(256.0),
        DataSize::from_mib(512.0),
        DataSize::from_gib(1.0),
    ];

    println!(
        "{:<22} {:>9} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "topology", "size", "baseline (us)", "fifo (us)", "scf (us)", "speedup", "scf util"
    );

    let mut speedups = Vec::new();
    for topo in next_generation_suite() {
        let executor = CollectiveExecutor::new(&topo);
        for size in sizes {
            let request = CollectiveRequest::new(themis::CollectiveKind::AllReduce, size);
            let reports: Vec<_> = SchedulerKind::all()
                .iter()
                .map(|kind| executor.run_kind(*kind, 64, &request))
                .collect::<Result<_, _>>()?;
            let speedup = reports[0].total_time_ns / reports[2].total_time_ns;
            speedups.push(speedup);
            println!(
                "{:<22} {:>6.0} MB {:>14.1} {:>14.1} {:>14.1} {:>8.2}x {:>8.1}%",
                topo.name(),
                size.as_mib(),
                reports[0].total_time_us(),
                reports[1].total_time_us(),
                reports[2].total_time_us(),
                speedup,
                reports[2].average_bw_utilization() * 100.0
            );
        }
    }

    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
    println!();
    println!(
        "Themis+SCF speedup over baseline: {mean:.2}x mean, {max:.2}x max \
         (paper reports 1.72x mean, 2.70x max)"
    );
    Ok(())
}
