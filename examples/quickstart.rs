//! Quickstart: declare a one-platform campaign that runs a 256 MiB gradient
//! All-Reduce under every Table 3 scheduler, execute it on the parallel
//! runner, and compare completion time and bandwidth utilisation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use themis::prelude::*;

fn main() -> Result<(), ThemisError> {
    // 1. The whole experiment is a three-line campaign: a Table 2 platform
    //    (3D-SW_SW_SW_homo, 16 x 8 x 8 NPUs at 800 Gbps per dimension), one
    //    collective size, and (by default) all three Table 3 schedulers with
    //    the paper's 64 chunks per collective.
    let report = Campaign::new()
        .topologies([PresetTopology::SwSwSw3dHomo])
        .sizes_mib([256.0])
        .run(&Runner::parallel())?;

    // 2. Every cell of the expanded matrix carries its configuration and the
    //    full simulation report.
    for run in &report {
        println!(
            "{:12}  completion {:9.1} us   avg BW utilisation {:5.1}%",
            run.config.scheduler.label(),
            run.total_time_us(),
            run.average_bw_utilization() * 100.0
        );
        for (dim, util) in run.report.per_dim_utilization().iter().enumerate() {
            println!(
                "              dim{}: {:5.1}% busy with transfers",
                dim + 1,
                util * 100.0
            );
        }
    }
    println!();

    // 3. The headline comparison, looked up by configuration rather than by
    //    position in a result vector.
    let speedup = report
        .speedup_over_baseline(
            PresetTopology::SwSwSw3dHomo.name(),
            DataSize::from_mib(256.0),
            SchedulerKind::ThemisScf,
        )
        .expect("the campaign ran both cells");
    println!("Themis+SCF speedup over the baseline: {speedup:.2}x");
    Ok(())
}
