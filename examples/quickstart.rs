//! Quickstart: schedule a single gradient All-Reduce with the baseline and
//! with Themis on a next-generation 1024-NPU platform, simulate both, and
//! compare completion time and bandwidth utilisation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use themis::{CollectiveRequest, PipelineSimulator, PresetTopology, SchedulerKind, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a platform: 3D-SW_SW_SW_homo from Table 2 (16 x 8 x 8 NPUs,
    //    800 Gbps per NPU on every dimension).
    let topo = PresetTopology::SwSwSw3dHomo.build();
    println!("platform: {topo}");
    println!("total per-NPU bandwidth: {}", topo.total_bandwidth());
    println!();

    // 2. The collective issued by the training loop: a 256 MiB All-Reduce
    //    (e.g. FP16 gradients of a 128M-parameter model).
    let request = CollectiveRequest::all_reduce_mib(256.0);
    println!("collective: {request}");
    println!();

    // 3. Schedule it with each policy (64 chunks, the paper's default) and
    //    execute the schedule on the chunk-pipeline simulator.
    let simulator = PipelineSimulator::new(&topo, SimOptions::default());
    let mut reports = Vec::new();
    for kind in SchedulerKind::all() {
        let schedule = kind.build(64).schedule(&request, &topo)?;
        let report = simulator.run(&schedule)?;
        println!(
            "{:12}  completion {:9.1} us   avg BW utilisation {:5.1}%",
            kind.label(),
            report.total_time_us(),
            report.average_bw_utilization() * 100.0
        );
        for (dim, util) in report.per_dim_utilization().iter().enumerate() {
            println!("              dim{}: {:5.1}% busy with transfers", dim + 1, util * 100.0);
        }
        reports.push(report);
    }
    println!();

    // 4. The headline comparison.
    let speedup = reports[0].total_time_ns / reports[2].total_time_ns;
    println!("Themis+SCF speedup over the baseline: {speedup:.2}x");
    Ok(())
}
