//! Network-design insights (the Sec. 6.3 scenario): classify how the
//! bandwidth of each dimension pair is provisioned and show, by simulation,
//! that Themis recovers the bandwidth of over-provisioned dimensions while no
//! scheduler can rescue an under-provisioned design point.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example topology_design
//! ```

use themis::net::classify_topology;
use themis::prelude::*;

fn design_point(dim2_gbps: f64) -> Result<Platform, ThemisError> {
    let topo = NetworkTopology::builder(format!("4x4 with {dim2_gbps} Gbps dim2"))
        .dimension(DimensionSpec::with_aggregate_bandwidth(
            TopologyKind::Switch,
            4,
            400.0,
            0.0,
        )?)
        .dimension(DimensionSpec::with_aggregate_bandwidth(
            TopologyKind::Switch,
            4,
            dim2_gbps,
            0.0,
        )?)
        .build()?;
    Ok(Platform::custom(topo))
}

fn main() -> Result<(), ThemisError> {
    println!("--- provisioning classification of the Table 2 platforms ---");
    for preset in PresetTopology::all() {
        let topo = preset.build();
        print!("{}", classify_topology(&topo));
    }
    println!();

    println!("--- design-space sweep: 4x4 2D platform, dim1 fixed at 400 Gbps ---");
    println!("(just enough would be dim2 = dim1 / P1 = 100 Gbps)");
    println!();
    println!(
        "{:>14} {:>20} {:>15} {:>15}",
        "dim2 (Gbps)", "scenario", "baseline util", "Themis util"
    );
    let size = DataSize::from_mib(512.0);
    for dim2_gbps in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let platform = design_point(dim2_gbps)?;
        let class = classify_topology(platform.topology()).pairs[0].class;
        let job = Job::all_reduce(size);
        let baseline = job.scheduler(SchedulerKind::Baseline).run_on(&platform)?;
        let themis = job.scheduler(SchedulerKind::ThemisScf).run_on(&platform)?;
        println!(
            "{:>14} {:>20} {:>14.1}% {:>14.1}%",
            dim2_gbps,
            class.to_string(),
            baseline.average_bw_utilization() * 100.0,
            themis.average_bw_utilization() * 100.0
        );
    }
    println!();
    println!(
        "over-provisioned outer dimensions are wasted by the baseline but recovered by Themis; \
         under-provisioned ones cannot be saved by any schedule (avoid those design points)"
    );
    Ok(())
}
