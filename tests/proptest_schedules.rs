//! Property-based tests of the scheduling layer: on randomly generated
//! multi-dimensional topologies and collective sizes, the schedulers must
//! always emit valid, size-preserving, deterministic schedules, and the
//! simulator must respect its physical invariants.

use proptest::prelude::*;
use themis::{
    CollectiveKind, CollectiveRequest, DataSize, DimensionSpec, IdealEstimator, NetworkTopology,
    PipelineSimulator, SchedulerKind, SimOptions, ThemisScheduler, TopologyKind,
};
use themis_core::{CollectiveScheduler, DimLoadTracker, Splitter};

/// Strategy: a random dimension (size 2–16, bandwidth 50–2000 Gbps, latency
/// 0–2000 ns). Switch dimensions are constrained to power-of-two sizes because
/// the halving-doubling algorithm requires it.
fn dimension_strategy() -> impl Strategy<Value = DimensionSpec> {
    (
        prop_oneof![
            Just(TopologyKind::Ring),
            Just(TopologyKind::FullyConnected),
            Just(TopologyKind::Switch),
        ],
        2u32..=4,
        50.0f64..2000.0,
        0.0f64..2000.0,
        2usize..=16,
    )
        .prop_map(|(kind, pow, bandwidth, latency, free_size)| {
            let size = match kind {
                TopologyKind::Switch => 1usize << pow,
                _ => free_size,
            };
            DimensionSpec::with_aggregate_bandwidth(kind, size, bandwidth, latency)
                .expect("generated dimensions are valid")
        })
}

/// Strategy: a random 2–4 dimensional topology.
fn topology_strategy() -> impl Strategy<Value = NetworkTopology> {
    prop::collection::vec(dimension_strategy(), 2..=4).prop_map(|dims| {
        NetworkTopology::new("proptest-topology", dims).expect("generated topologies are valid")
    })
}

fn collective_kind_strategy() -> impl Strategy<Value = CollectiveKind> {
    prop_oneof![
        Just(CollectiveKind::AllReduce),
        Just(CollectiveKind::ReduceScatter),
        Just(CollectiveKind::AllGather),
        Just(CollectiveKind::AllToAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn themis_schedules_are_valid_and_cover_the_whole_collective(
        topo in topology_strategy(),
        kind in collective_kind_strategy(),
        size_mib in 1.0f64..512.0,
        chunks in 1usize..96,
    ) {
        let request = CollectiveRequest::new(kind, DataSize::from_mib(size_mib));
        let schedule = ThemisScheduler::new(chunks).schedule(&request, &topo).unwrap();
        schedule.validate(&topo).unwrap();
        prop_assert_eq!(schedule.chunks().len(), chunks);
        let total: f64 = schedule.total_chunk_bytes();
        prop_assert!((total - request.size().as_bytes_f64()).abs() < 1.0);
        // Every chunk visits each dimension exactly once per phase, and the
        // All-Gather order is the reverse of the Reduce-Scatter order for
        // All-Reduce chunks (Algorithm 1, line 8).
        if kind == CollectiveKind::AllReduce {
            for chunk in schedule.chunks() {
                let rs = chunk.reduce_scatter_order();
                let mut ag = chunk.all_gather_order();
                ag.reverse();
                prop_assert_eq!(rs, ag);
            }
        }
    }

    #[test]
    fn scheduling_is_deterministic(
        topo in topology_strategy(),
        size_mib in 1.0f64..256.0,
    ) {
        let request = CollectiveRequest::all_reduce_mib(size_mib);
        let a = ThemisScheduler::new(32).schedule(&request, &topo).unwrap();
        let b = ThemisScheduler::new(32).schedule(&request, &topo).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn simulation_respects_physical_invariants(
        topo in topology_strategy(),
        size_mib in 1.0f64..256.0,
        kind_index in 0usize..3,
    ) {
        let kind = SchedulerKind::all()[kind_index];
        let request = CollectiveRequest::all_reduce_mib(size_mib);
        let schedule = kind.build(16).schedule(&request, &topo).unwrap();
        let report = PipelineSimulator::new(&topo, SimOptions::default()).run(&schedule).unwrap();

        // Completion time is positive and at least the Table 3 ideal bound.
        let bound = IdealEstimator::new().communication_time_ns(&request, &topo).unwrap();
        prop_assert!(report.total_time_ns > 0.0);
        prop_assert!(report.total_time_ns >= bound * 0.999);

        // Utilisations are fractions; busy time never exceeds completion time.
        prop_assert!(report.average_bw_utilization() <= 1.0 + 1e-9);
        for (dim, util) in report.per_dim_utilization().iter().enumerate() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(util));
            prop_assert!(report.dims[dim].busy_ns <= report.total_time_ns + 1.0);
        }

        // The bytes that crossed each dimension match the schedule's prediction.
        let predicted = schedule.wire_bytes_per_dim(&topo);
        for (dim, expected) in predicted.iter().enumerate() {
            prop_assert!((report.dims[dim].wire_bytes - expected).abs() < 1.0);
        }
    }

    #[test]
    fn splitter_chunks_always_sum_to_the_collective_size(
        bytes in 1u64..(1u64 << 40),
        chunks in 1usize..512,
    ) {
        let splitter = Splitter::new(chunks).unwrap();
        let sizes = splitter.split(DataSize::from_bytes(bytes)).unwrap();
        prop_assert_eq!(sizes.len(), chunks);
        let total: f64 = sizes.iter().sum();
        prop_assert_eq!(total as u64, bytes);
        let max = sizes.iter().cloned().fold(f64::MIN, f64::max);
        let min = sizes.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(max - min <= 1.0);
    }

    #[test]
    fn load_tracker_orderings_are_consistent_permutations(
        loads in prop::collection::vec(0.0f64..1e9, 1..8),
    ) {
        let mut tracker = DimLoadTracker::new(loads.len());
        tracker.reset(loads.clone());
        let ascending = tracker.dims_by_ascending_load();
        let descending = tracker.dims_by_descending_load();
        // Both orders are permutations of the dimension indices.
        let mut sorted_asc = ascending.clone();
        sorted_asc.sort_unstable();
        prop_assert_eq!(&sorted_asc, &(0..loads.len()).collect::<Vec<_>>());
        // Ascending order is non-decreasing in load; descending non-increasing.
        for pair in ascending.windows(2) {
            prop_assert!(loads[pair[0]] <= loads[pair[1]] + 1e-12);
        }
        for pair in descending.windows(2) {
            prop_assert!(loads[pair[0]] >= loads[pair[1]] - 1e-12);
        }
        prop_assert!(tracker.load_gap() >= 0.0);
    }
}
