//! Integration tests for the telemetry registry threaded through the facade
//! (`SimWorkspace::with_telemetry`, the `phase.*` spans, the per-dimension
//! engine counters), the service's `metrics` request kind, and the
//! Perfetto trace exports re-exported at the crate root.
//!
//! The load-bearing contracts: instrumentation never changes simulation
//! results (reports stay bit-identical with recording on, off, or routed to
//! a private registry), and the exported traces are schema-correct and
//! deterministic.

use themis::api::json::Json;
use themis::api::serve::campaign_cells_to_json;
use themis::prelude::*;
use themis::{sim_report_trace, stream_report_trace, Registry};

fn platform() -> Platform {
    Platform::preset(PresetTopology::SwSwSw3dHomo)
}

fn job() -> Job {
    Job::all_reduce_mib(48.0).chunks(8)
}

fn stream_job() -> StreamJob {
    StreamJob::named("pair")
        .push(QueuedCollective::all_reduce_mib("g0", 24.0))
        .push(QueuedCollective::all_reduce_mib("g1", 12.0).issued_at(5_000.0))
        .chunks(8)
}

#[test]
fn reports_are_bit_identical_with_telemetry_on_off_or_private() {
    let platform = platform();
    let plan = SimPlanCache::new();

    let mut plain = SimWorkspace::new();
    let reference = job().run_planned(&platform, &plan, &mut plain).unwrap();

    let mut private = SimWorkspace::with_telemetry(Registry::new());
    let recorded = job().run_planned(&platform, &plan, &mut private).unwrap();
    assert_eq!(recorded, reference, "a private registry changed the report");

    let disabled_registry = Registry::new();
    disabled_registry.set_enabled(false);
    let mut disabled = SimWorkspace::with_telemetry(disabled_registry);
    let dark = job().run_planned(&platform, &plan, &mut disabled).unwrap();
    assert_eq!(dark, reference, "disabling telemetry changed the report");

    let stream_reference = stream_job()
        .run_planned(&platform, &plan, &mut plain)
        .unwrap();
    let stream_recorded = stream_job()
        .run_planned(&platform, &plan, &mut private)
        .unwrap();
    assert_eq!(stream_recorded, stream_reference);
}

#[test]
fn workspace_telemetry_records_runs_phases_and_dim_counters() {
    let registry = Registry::new();
    let mut workspace = SimWorkspace::with_telemetry(registry.clone());
    let plan = SimPlanCache::new();
    let platform = platform();
    job().run_planned(&platform, &plan, &mut workspace).unwrap();
    stream_job()
        .run_planned(&platform, &plan, &mut workspace)
        .unwrap();

    let snapshot = registry.snapshot();
    // One pipeline run plus one overlapped stream run.
    assert_eq!(snapshot.counter("sim.runs"), 2);
    // The phase spans around the plan lookups recorded wall-clock time.
    assert!(snapshot.histogram("phase.schedule_ns").is_some());
    assert!(snapshot.histogram("phase.cost_precompute_ns").is_some());
    // Both engines recorded their event loops.
    assert!(snapshot.span_total_ns("sim.pipeline.event_loop_ns") > 0);
    assert!(snapshot.span_total_ns("sim.stream.event_loop_ns") > 0);
    // Per-dimension busy time, op counts and queue-depth high-water marks.
    for dim in 0..platform.topology().num_dims() {
        assert!(snapshot.counter(&format!("sim.dim{dim}.busy_ns")) > 0);
        assert!(snapshot.counter(&format!("sim.dim{dim}.ops")) > 0);
        assert!(snapshot.gauge(&format!("sim.dim{dim}.max_queue_depth")) >= 1);
    }
    // The snapshot serializes to both JSON and the Prometheus exposition.
    assert!(snapshot.to_json().get("counters").is_some());
    assert!(snapshot.to_prometheus().contains("themis_sim_runs 2"));
}

#[test]
fn service_answers_metrics_with_counters_and_prometheus_text() {
    let specs = Campaign::new()
        .topologies([PresetTopology::Sw2d])
        .sizes_mib([16.0])
        .chunk_counts([4])
        .expand()
        .unwrap();
    let service = Service::default();
    let body = || {
        Json::obj([
            ("id", Json::Num(1.0)),
            ("kind", Json::Str("campaign".to_string())),
            ("cells", campaign_cells_to_json(&specs)),
        ])
        .render()
    };
    service.handle_line(&body());
    service.handle_line(&body());

    let response = Json::parse(&service.handle_line(r#"{"id":9,"kind":"metrics"}"#)).unwrap();
    assert_eq!(response.field("status").unwrap().as_str().unwrap(), "ok");
    let result = response.field("result").unwrap();
    let counters = result.field("snapshot").unwrap().field("counters").unwrap();
    assert_eq!(
        counters
            .field("serve.requests.campaign")
            .unwrap()
            .as_usize()
            .unwrap(),
        2
    );
    // The dispatch latency histogram counted both campaign requests.
    let latency = result
        .field("snapshot")
        .unwrap()
        .field("histograms")
        .unwrap()
        .field("serve.latency_ns.campaign")
        .unwrap();
    assert_eq!(latency.field("count").unwrap().as_usize().unwrap(), 2);
    let prometheus = result.field("prometheus").unwrap().as_str().unwrap();
    assert!(prometheus.contains("themis_serve_requests_campaign 2"));
    assert!(prometheus.contains("themis_serve_latency_ns_campaign_count 2"));
    // The caches block reuses the unified CacheStats shape. The campaign
    // expands over all three schedulers, so each request touches 3 cells:
    // the first misses on all of them, the repeat hits on all of them.
    let cells = result.field("caches").unwrap().field("cells").unwrap();
    assert_eq!(cells.field("hits").unwrap().as_usize().unwrap(), 3);
    assert_eq!(cells.field("misses").unwrap().as_usize().unwrap(), 3);
    let rates = result.field("hit_rates").unwrap();
    assert!((rates.field("cells").unwrap().as_f64().unwrap() - 0.5).abs() < 1e-12);
}

#[test]
fn facade_trace_exports_are_schema_correct_and_deterministic() {
    let platform = platform();
    let run = job().run_on(&platform).unwrap();
    let campaign_trace = sim_report_trace(&run.report);
    validate_trace(&campaign_trace, false);
    assert_eq!(
        campaign_trace.render(),
        sim_report_trace(&job().run_on(&platform).unwrap().report).render(),
        "campaign export is not deterministic"
    );

    let stream = stream_job().run_on(&platform).unwrap();
    let stream_trace = stream_report_trace(&stream.report);
    validate_trace(&stream_trace, true);
    assert_eq!(
        stream_trace.render(),
        stream_report_trace(&stream_job().run_on(&platform).unwrap().report).render(),
        "stream export is not deterministic"
    );
}

/// Walks a trace document asserting the Chrome trace-event schema: `M`
/// metadata and `X` slices only, `pid` 1 throughout, and per-track (`tid`)
/// monotone slice timestamps. Stream traces additionally color every slice.
fn validate_trace(trace: &Json, stream: bool) {
    let events = trace.field("traceEvents").unwrap().as_arr().unwrap();
    let mut slices = 0usize;
    let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
    for event in events {
        assert_eq!(event.field("pid").unwrap().as_f64().unwrap(), 1.0);
        match event.field("ph").unwrap().as_str().unwrap() {
            "M" => {}
            "X" => {
                slices += 1;
                let tid = event.field("tid").unwrap().as_f64().unwrap() as u64;
                let ts = event.field("ts").unwrap().as_f64().unwrap();
                assert!(event.field("dur").unwrap().as_f64().unwrap() >= 0.0);
                if let Some(&prev) = last_ts.get(&tid) {
                    assert!(ts >= prev, "track {tid} went backwards");
                }
                last_ts.insert(tid, ts);
                if stream {
                    assert!(
                        !event.field("cname").unwrap().as_str().unwrap().is_empty(),
                        "stream slices carry a collective color"
                    );
                }
            }
            other => panic!("unexpected event phase `{other}`"),
        }
    }
    assert!(slices > 0, "trace has no slices");
    assert!(last_ts.len() >= 2, "expected one track per dimension");
}
