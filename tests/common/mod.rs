//! Shared helpers for the deterministic property tests.
//!
//! The build environment is offline, so `proptest` is unavailable; the
//! property tests instead sweep deterministic parameter grids and draw
//! pseudo-random data from a seeded linear congruential generator.

#![allow(dead_code)] // each integration-test crate uses a subset of these

/// A seeded linear congruential generator (Numerical Recipes constants):
/// deterministic, dependency-free pseudo-randomness for test data.
pub struct Lcg {
    state: u64,
}

impl Lcg {
    pub fn new(seed: u64) -> Self {
        Lcg {
            state: seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // xorshift the high bits down for better low-bit quality.
        self.state ^ (self.state >> 33)
    }

    /// A float uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// An integer uniform in `[lo, hi]`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    /// A matrix of `p` rows × `elements` columns of floats in `[lo, hi)`
    /// (per-NPU participant data for the functional collectives).
    pub fn participant_data(
        &mut self,
        p: usize,
        elements: usize,
        lo: f64,
        hi: f64,
    ) -> Vec<Vec<f64>> {
        (0..p)
            .map(|_| (0..elements).map(|_| self.uniform(lo, hi)).collect())
            .collect()
    }
}

/// Relative float comparison used by the numerical correctness checks.
pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-6 * (1.0 + b.abs())
}
