//! Integration tests for the fault-event subsystem (`themis_sim::faults`)
//! through the public facade.
//!
//! Two load-bearing contracts:
//!
//! * **Empty plans are free.** A platform carrying `FaultPlan::new()` takes
//!   the exact original float paths: every report is bit-identical to the
//!   fault-free platform, for every scheduler kind, on every preset, through
//!   single-job, stream and sharded execution alike.
//! * **Faulted runs are deterministic.** The same fault plan produces the
//!   same report across runner backends (sequential, parallel), cached and
//!   uncached paths (cold, `ScheduleCache`, warm `SimPlanCache`), and the
//!   JSON round trip to worker processes.

use themis::api::shard::{merge_reports, ShardPlan, ShardReport, ShardSpec, ShardStrategy};
use themis::prelude::*;

/// The fault plan exercised by the determinism tests: a t = 0 asymmetry the
/// scheduler sees, a mid-stream degradation, and a transient flap.
fn eventful_plan() -> FaultPlan {
    FaultPlan::new()
        .degrade(0.0, 0, 0.75)
        .degrade(400_000.0, 1, 0.5)
        .fail(800_000.0, 0)
        .recover(1_200_000.0, 0)
}

/// Campaign cells over `presets`: every scheduler kind, one platform per
/// preset carrying `plan` (`None` builds the fault-free platform, without
/// even an empty plan installed).
fn specs_with(presets: &[PresetTopology], plan: Option<&FaultPlan>) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for &preset in presets {
        let mut platform = Platform::preset(preset);
        if let Some(plan) = plan {
            platform = platform.with_faults(plan.clone());
        }
        for kind in SchedulerKind::all() {
            specs.push(RunSpec::new(
                platform.clone(),
                Job::all_reduce_mib(48.0).chunks(8).scheduler(kind),
            ));
        }
    }
    specs
}

/// A small two-collective stream (one queued mid-flight).
fn stream(kind: SchedulerKind) -> StreamJob {
    StreamJob::named("faulted-pair")
        .push(QueuedCollective::all_reduce_mib("g2", 32.0))
        .push(QueuedCollective::all_reduce_mib("g1", 32.0).issued_at(200_000.0))
        .chunks(4)
        .scheduler(kind)
}

#[test]
fn empty_fault_plan_is_bit_identical_for_every_kind_and_preset() {
    for preset in PresetTopology::all() {
        let plain = Platform::preset(preset);
        let faulted = plain.clone().with_faults(FaultPlan::new());
        // The empty plan folds into no scheduling asymmetry either.
        assert_eq!(
            faulted.scheduling_topology().unwrap().as_ref(),
            plain.topology()
        );
        for kind in SchedulerKind::all() {
            let job = Job::all_reduce_mib(24.0).chunks(4).scheduler(kind);
            assert_eq!(
                job.run_on(&faulted).unwrap(),
                job.run_on(&plain).unwrap(),
                "single job, {kind} on {preset:?}"
            );
            let streamed = stream(kind);
            assert_eq!(
                streamed.run_on(&faulted).unwrap(),
                streamed.run_on(&plain).unwrap(),
                "stream, {kind} on {preset:?}"
            );
        }
    }
}

#[test]
fn empty_fault_plan_is_bit_identical_through_sharded_execution() {
    let presets = [PresetTopology::Sw2d, PresetTopology::FcRingSw3d];
    let plain = specs_with(&presets, None);
    let faulted = specs_with(&presets, Some(&FaultPlan::new()));
    let runner = Runner::sequential();
    let merge = |specs: &[RunSpec]| {
        let plan = ShardPlan::from_cells(ShardStrategy::CostBalanced, specs, 3);
        let partials: Vec<ShardReport> = ShardSpec::campaign_shards(specs, &plan)
            .unwrap()
            .iter()
            .map(|shard| shard.execute(&runner).unwrap())
            .collect();
        merge_reports(&partials).unwrap()
    };
    assert_eq!(
        merge(&faulted).campaign(),
        merge(&plain).campaign(),
        "sharded campaign with an empty fault plan diverged from the fault-free run"
    );
}

#[test]
fn faulted_runs_are_deterministic_across_runner_backends_and_caches() {
    let presets = [PresetTopology::Sw2d, PresetTopology::FcRingSw3d];
    let specs = specs_with(&presets, Some(&eventful_plan()));
    let reference = CampaignReport::new(Runner::sequential().execute(&specs).unwrap());
    let parallel = CampaignReport::new(Runner::parallel_threads(3).execute(&specs).unwrap());
    assert_eq!(
        parallel, reference,
        "parallel runner diverged on faulted cells"
    );
    // Two passes over one warm plan cache: epoch tables are built once and
    // shared, and the reports stay bit-identical.
    let plan = SimPlanCache::new();
    for pass in 0..2 {
        let cached = CampaignReport::new(
            Runner::sequential()
                .execute_with_cache(&specs, &plan)
                .unwrap(),
        );
        assert_eq!(cached, reference, "warm-plan pass {pass} diverged");
    }
    assert!(plan.cost_tables().hits() > 0);
}

#[test]
fn faulted_job_paths_agree_bit_for_bit() {
    let platform = Platform::preset(PresetTopology::Sw2d).with_faults(eventful_plan());
    let cache = ScheduleCache::new();
    let plan = SimPlanCache::new();
    let mut workspace = SimWorkspace::new();
    for kind in SchedulerKind::all() {
        let job = Job::all_reduce_mib(64.0).chunks(16).scheduler(kind);
        let direct = job.run_on(&platform).unwrap();
        assert_eq!(
            job.run_on_cached(&platform, &cache).unwrap(),
            direct,
            "{kind}"
        );
        assert_eq!(
            job.run_planned(&platform, &plan, &mut workspace).unwrap(),
            direct,
            "{kind}"
        );
        let streamed = stream(kind);
        let stream_direct = streamed.run_on(&platform).unwrap();
        assert_eq!(
            streamed.run_on_cached(&platform, &cache).unwrap(),
            stream_direct,
            "stream {kind}"
        );
        assert_eq!(
            streamed
                .run_planned(&platform, &plan, &mut workspace)
                .unwrap(),
            stream_direct,
            "stream {kind}"
        );
    }
}

#[test]
fn faulted_shards_survive_the_json_round_trip() {
    let specs = specs_with(&[PresetTopology::Sw2d], Some(&eventful_plan()));
    let reference = CampaignReport::new(Runner::sequential().execute(&specs).unwrap());
    let plan = ShardPlan::round_robin(specs.len(), 2);
    let partials: Vec<ShardReport> = ShardSpec::campaign_shards(&specs, &plan)
        .unwrap()
        .iter()
        .map(|shard| {
            // Fault plans ride inside the platform options JSON of the spec.
            let remote = ShardSpec::from_json(&shard.to_json()).unwrap();
            assert_eq!(&remote, shard);
            let report = remote.execute(&Runner::sequential()).unwrap();
            ShardReport::from_json(&report.to_json()).unwrap()
        })
        .collect();
    assert_eq!(
        merge_reports(&partials).unwrap().campaign(),
        Some(&reference)
    );
}

#[test]
fn t_zero_degradation_reschedules_and_mid_stream_does_not() {
    let platform = Platform::preset(PresetTopology::Sw2d);
    let healthy = platform.scheduling_topology().unwrap().into_owned();
    // Mid-stream faults stay invisible to the scheduler.
    let mid = platform
        .clone()
        .with_faults(FaultPlan::new().degrade(500_000.0, 1, 0.5));
    assert_eq!(mid.scheduling_topology().unwrap().as_ref(), &healthy);
    // A t = 0 degrade is static asymmetry: the scheduler sees the scaled
    // dimension and Themis redistributes chunks accordingly.
    let at_zero = platform
        .clone()
        .with_faults(FaultPlan::new().degrade(0.0, 1, 0.5));
    let seen = at_zero.scheduling_topology().unwrap().into_owned();
    assert_ne!(seen, healthy);
    assert_eq!(seen, healthy.with_dim_bandwidth_scaled(1, 0.5).unwrap());
    let job = Job::all_reduce_mib(64.0).chunks(16);
    let blind = job.schedule_on(&platform).unwrap();
    let aware = job.schedule_on(&at_zero).unwrap();
    assert_ne!(blind, aware, "Themis did not adapt to the t = 0 asymmetry");
    assert_eq!(job.schedule_on(&mid).unwrap(), blind);
}
