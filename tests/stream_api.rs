//! Integration tests of the streaming multi-collective queue subsystem:
//! the `themis::api::stream` layer end to end, its degeneration to the
//! sequential timeline, training-derived streams, and JSON round-tripping.

use themis::prelude::*;
use themis::sim::stream::{StreamEntry, StreamSimulator};
use themis::sim::{TimelineEntry, TimelineSimulator};
use themis::ThemisScheduler;

fn gradient_stream() -> StreamJob {
    StreamJob::named("grads")
        .push(QueuedCollective::all_reduce_mib("layer-3", 96.0))
        .push(QueuedCollective::all_reduce_mib("layer-2", 64.0).issued_at(50_000.0))
        .push(QueuedCollective::all_reduce_mib("layer-1", 32.0).issued_at(100_000.0))
        .chunks(16)
}

#[test]
fn stream_engine_degenerates_to_the_sequential_timeline_bit_identically() {
    // The satellite guarantee: with cross-collective overlap disabled, the
    // stream engine and the (wrapper) timeline simulator are the same code
    // path and agree bit for bit.
    let topo = PresetTopology::SwSwSw3dHetero.build();
    let entries: Vec<StreamEntry> = gradient_stream()
        .entries()
        .iter()
        .map(|c| StreamEntry::new(c.label().to_string(), c.issue_ns(), c.request()))
        .collect();
    let sequential_options = SimOptions::default().with_cross_collective_overlap(false);
    let stream = StreamSimulator::new(&topo, sequential_options)
        .run(&mut ThemisScheduler::new(16), &entries)
        .unwrap();

    let timeline_entries: Vec<TimelineEntry> = gradient_stream()
        .entries()
        .iter()
        .map(|c| TimelineEntry {
            label: c.label().to_string(),
            issue_ns: c.issue_ns(),
            request: c.request(),
        })
        .collect();
    let timeline = TimelineSimulator::new(&topo, SimOptions::default())
        .run(&mut ThemisScheduler::new(16), &timeline_entries)
        .unwrap();

    assert_eq!(stream.finish_ns.to_bits(), timeline.finish_ns.to_bits());
    assert_eq!(stream.spans.len(), timeline.entries.len());
    for (span, (entry, start, report)) in stream.spans.iter().zip(timeline.entries.iter()) {
        assert_eq!(span.label, entry.label);
        assert_eq!(span.start_ns.to_bits(), start.to_bits());
        assert_eq!(&span.report, report);
    }
    // And the report helpers agree on the derived quantities.
    assert_eq!(
        stream.makespan_ns().to_bits(),
        timeline.makespan_ns().to_bits()
    );
    assert_eq!(
        stream.total_communication_ns().to_bits(),
        timeline.total_communication_ns().to_bits()
    );
}

#[test]
fn streaming_beats_or_matches_the_sequential_policy_through_the_api() {
    let platform = Platform::preset(PresetTopology::SwSwSw3dHomo);
    let streamed = gradient_stream().run_on(&platform).unwrap();
    let sequential = gradient_stream()
        .run_on(
            &platform
                .clone()
                .with_options(SimOptions::default().with_cross_collective_overlap(false)),
        )
        .unwrap();
    assert!(streamed.makespan_ns() <= sequential.makespan_ns() + 1e-6);
    assert_eq!(streamed.spans().len(), 3);
    // Spans arrive in issue order with non-decreasing starts.
    let starts: Vec<f64> = streamed.spans().iter().map(|s| s.start_ns).collect();
    assert!(starts.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn training_streams_expand_run_and_round_trip_through_json() {
    let streams: Vec<StreamJob> = [Workload::ResNet152, Workload::Dlrm]
        .into_iter()
        .map(|w| StreamJob::from_training(&TrainingJob::new(w)).unwrap())
        .collect();
    let campaign = StreamCampaign::new()
        .topologies([PresetTopology::SwSwSw3dHomo, PresetTopology::FcRingSw3d])
        .schedulers([SchedulerKind::Baseline, SchedulerKind::ThemisScf])
        .streams(streams);
    assert_eq!(campaign.matrix_size(), 2 * 2 * 2);
    let report = campaign.run(&Runner::parallel()).unwrap();
    assert_eq!(report.len(), 8);

    let text = report.to_json();
    let back = StreamCampaignReport::from_json(&text).unwrap();
    assert_eq!(back, report);
    let speedup = back
        .makespan_speedup_over_baseline(
            "3D-SW_SW_SW_homo",
            "ResNet-152-iteration",
            SchedulerKind::ThemisScf,
        )
        .unwrap();
    assert!(speedup >= 1.0 - 1e-9, "Themis regressed: {speedup}");
}

#[test]
fn cached_and_uncached_stream_campaigns_are_bit_identical_across_all_presets() {
    // Stream cells schedule every queued collective; with the cache they stop
    // re-scheduling identical ones — and must not move a single bit of any
    // report. Cover every Table 3 scheduler on every preset topology.
    let campaign = StreamCampaign::new()
        .topologies(PresetTopology::all())
        .stream(gradient_stream());
    assert_eq!(campaign.matrix_size(), 7 * 3);
    let cached = campaign.run(&Runner::parallel_threads(4)).unwrap();
    let uncached = campaign
        .run(&Runner::parallel_threads(4).with_schedule_cache(false))
        .unwrap();
    assert_eq!(cached, uncached);
    for (with_cache, without_cache) in cached.iter().zip(uncached.iter()) {
        assert_eq!(
            with_cache.makespan_ns().to_bits(),
            without_cache.makespan_ns().to_bits()
        );
        assert_eq!(
            with_cache.overlap_ns().to_bits(),
            without_cache.overlap_ns().to_bits()
        );
        for (cached_span, uncached_span) in
            with_cache.spans().iter().zip(without_cache.spans().iter())
        {
            assert_eq!(cached_span.report, uncached_span.report);
        }
    }
}

#[test]
fn warm_plan_stream_campaigns_are_bit_identical_across_all_presets() {
    // The precompiled-plan contract for streams: queued collectives served
    // from a warm `SimPlanCache` (shared schedules *and* shared cost tables)
    // across repeated runs and both backends must not move a single bit.
    let campaign = StreamCampaign::new()
        .topologies(PresetTopology::all())
        .stream(gradient_stream());
    let reference = campaign
        .run(&Runner::parallel_threads(4).with_schedule_cache(false))
        .unwrap();
    let plan = SimPlanCache::new();
    for runner in [Runner::sequential(), Runner::parallel_threads(4)] {
        for _ in 0..2 {
            let warm = campaign.run_with_cache(&runner, &plan).unwrap();
            assert_eq!(warm, reference);
        }
    }
    assert!(plan.cost_tables().hits() > 0);

    // The per-cell planned path agrees with the one-shot path too.
    let mut workspace = SimWorkspace::new();
    for spec in campaign.expand().unwrap() {
        let planned = spec
            .job
            .run_planned(&spec.platform, &plan, &mut workspace)
            .unwrap();
        assert_eq!(planned, spec.job.run_on(&spec.platform).unwrap());
    }
}

#[test]
fn cached_stream_jobs_reuse_schedules_for_identical_collectives() {
    // A stream of identical gradients schedules exactly once per
    // (topology, scheduler, size) with the cache — and still matches the
    // uncached run bit for bit.
    let stream = StreamJob::named("identical")
        .collectives((0..6).map(|i| {
            QueuedCollective::all_reduce_mib(format!("g{i}"), 48.0)
                .issued_at(f64::from(i) * 25_000.0)
        }))
        .chunks(16);
    let platform = Platform::preset(PresetTopology::SwSwSw3dHetero);
    let cache = ScheduleCache::new();
    let cached = stream.run_on_cached(&platform, &cache).unwrap();
    let uncached = stream.run_on(&platform).unwrap();
    assert_eq!(cached, uncached);
    assert_eq!(cache.misses(), 1, "identical collectives schedule once");
    assert_eq!(cache.hits(), 5);
}

#[test]
fn stream_errors_propagate_through_both_runner_backends() {
    let campaign = StreamCampaign::new()
        .topologies([PresetTopology::Sw2d])
        .stream(gradient_stream().chunks(0));
    for runner in [Runner::sequential(), Runner::parallel_threads(2)] {
        let err = campaign.run(&runner).unwrap_err();
        assert!(matches!(err, ThemisError::Schedule(_)), "{err}");
    }
    // Campaign-shape errors come first.
    let err = StreamCampaign::new()
        .run(&Runner::sequential())
        .unwrap_err();
    assert!(matches!(err, ThemisError::Campaign { .. }), "{err}");
}

#[test]
fn streamed_training_iteration_never_regresses_the_sequential_model() {
    let topo = PresetTopology::SwSwSw3dHetero.build();
    for workload in [Workload::ResNet152, Workload::Gnmt, Workload::Dlrm] {
        let streamed = TrainingSimulator::new(workload.config())
            .simulate_iteration_streamed(&topo, SchedulerKind::ThemisScf)
            .unwrap();
        let sequential = TrainingSimulator::new(workload.config())
            .with_sim_options(SimOptions::default().with_cross_collective_overlap(false))
            .simulate_iteration_streamed(&topo, SchedulerKind::ThemisScf)
            .unwrap();
        assert!(
            streamed.total_ns() <= sequential.total_ns() + 1e-6,
            "{workload:?}: streamed {:.0} ns vs sequential {:.0} ns",
            streamed.total_ns(),
            sequential.total_ns()
        );
        assert!(streamed.exposed_comm_ns <= sequential.exposed_comm_ns + 1e-6);
        assert!(streamed.stream.spans.len() == sequential.stream.spans.len());
    }
}
