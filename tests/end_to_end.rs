//! Cross-crate integration tests: scheduling → simulation → reporting on the
//! paper's evaluation platforms, plus data-level correctness of the schedules
//! the Themis scheduler emits.

use themis::collectives::functional::{hierarchical, reference_all_reduce};
use themis::{
    CollectiveRequest, CollectiveScheduler, DataSize, DimensionSpec, IdealEstimator,
    IntraDimPolicy, NetworkTopology, PipelineSimulator, PresetTopology, SchedulerKind,
    SimOptions, ThemisScheduler, TopologyKind,
};
use themis_core::enforced_intra_dim_order;

fn gigabyte_request() -> CollectiveRequest {
    CollectiveRequest::new(themis::CollectiveKind::AllReduce, DataSize::from_gib(1.0))
}

#[test]
fn every_scheduler_produces_valid_executable_schedules_on_every_platform() {
    let request = CollectiveRequest::all_reduce_mib(300.0);
    for preset in PresetTopology::all() {
        let topo = preset.build();
        let simulator = PipelineSimulator::new(&topo, SimOptions::default());
        for kind in SchedulerKind::all() {
            let schedule = kind.build(32).schedule(&request, &topo).unwrap();
            schedule.validate(&topo).unwrap();
            assert!(
                (schedule.total_chunk_bytes() - request.size().as_bytes_f64()).abs() < 1.0,
                "{}: chunk bytes do not sum to the collective size",
                preset.name()
            );
            let report = simulator.run(&schedule).unwrap();
            assert!(report.total_time_ns > 0.0);
            assert!(report.average_bw_utilization() <= 1.0 + 1e-9);
            for util in report.per_dim_utilization() {
                assert!((0.0..=1.0 + 1e-9).contains(&util));
            }
        }
    }
}

#[test]
fn themis_never_loses_to_the_baseline_and_never_beats_the_ideal_bound_at_scale() {
    let request = gigabyte_request();
    let ideal = IdealEstimator::new();
    for preset in PresetTopology::next_generation() {
        let topo = preset.build();
        let simulator = PipelineSimulator::new(&topo, SimOptions::default());
        let baseline = simulator
            .run(&SchedulerKind::Baseline.build(64).schedule(&request, &topo).unwrap())
            .unwrap();
        let themis = simulator
            .run(&SchedulerKind::ThemisScf.build(64).schedule(&request, &topo).unwrap())
            .unwrap();
        let bound = ideal.communication_time_ns(&request, &topo).unwrap();
        assert!(
            themis.total_time_ns <= baseline.total_time_ns,
            "{}: Themis slower than baseline",
            preset.name()
        );
        assert!(
            themis.total_time_ns >= bound,
            "{}: Themis beat the Table 3 ideal bound",
            preset.name()
        );
        // The headline claim: a clear utilisation gap on next-gen platforms.
        assert!(
            themis.average_bw_utilization() > baseline.average_bw_utilization() + 0.1,
            "{}: no utilisation benefit",
            preset.name()
        );
    }
}

#[test]
fn simulated_total_time_respects_per_dimension_transfer_lower_bounds() {
    // No dimension can finish before pushing its scheduled bytes at full BW.
    let request = CollectiveRequest::all_reduce_mib(512.0);
    for preset in [PresetTopology::SwSwSw3dHetero, PresetTopology::RingFcRingSw4d] {
        let topo = preset.build();
        for kind in SchedulerKind::all() {
            let schedule = kind.build(64).schedule(&request, &topo).unwrap();
            let report =
                PipelineSimulator::new(&topo, SimOptions::default()).run(&schedule).unwrap();
            let wire = schedule.wire_bytes_per_dim(&topo);
            for (dim, bytes) in wire.iter().enumerate() {
                let bw = topo.dim_bandwidth(dim).unwrap().as_bytes_per_ns();
                let lower_bound = bytes / bw;
                assert!(
                    report.total_time_ns >= lower_bound - 1.0,
                    "{} / {}: dim{} lower bound violated",
                    preset.name(),
                    kind.label(),
                    dim + 1
                );
            }
        }
    }
}

#[test]
fn themis_chunk_schedules_produce_correct_allreduce_results_on_real_data() {
    // Execute the dimension orders chosen by the Themis scheduler with the
    // data-level functional collectives and check the numerical result — the
    // end-to-end version of Observation 1.
    let topo = NetworkTopology::builder("functional-3d")
        .dimension(DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 2, 800.0, 0.0).unwrap())
        .dimension(DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 4, 400.0, 0.0).unwrap())
        .dimension(DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 2, 100.0, 0.0).unwrap())
        .build()
        .unwrap();
    let request = CollectiveRequest::all_reduce_mib(64.0);
    let schedule = ThemisScheduler::new(8).schedule(&request, &topo).unwrap();

    let npus = topo.num_npus();
    let elements = npus * 4;
    let data: Vec<Vec<f64>> = (0..npus)
        .map(|npu| (0..elements).map(|e| (npu * 13 + e * 7) as f64 % 19.0 - 9.0).collect())
        .collect();
    let expected = reference_all_reduce(&data).unwrap();

    let mut seen_non_baseline_order = false;
    for chunk in schedule.chunks() {
        let rs_order = chunk.reduce_scatter_order();
        let ag_order = chunk.all_gather_order();
        if rs_order != vec![0, 1, 2] {
            seen_non_baseline_order = true;
        }
        let result = hierarchical::all_reduce(&topo, &data, &rs_order, &ag_order).unwrap();
        for (row, reference) in result.iter().zip(expected.iter()) {
            for (a, b) in row.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
    assert!(
        seen_non_baseline_order,
        "Themis should have diversified at least one chunk's dimension order"
    );
}

#[test]
fn enforced_intra_dimension_order_is_consistent_across_replicas_and_executable() {
    let request = CollectiveRequest::all_reduce_mib(256.0);
    for preset in [PresetTopology::Sw2d, PresetTopology::RingSwSwSw4d] {
        let topo = preset.build();
        let schedule = SchedulerKind::ThemisScf.build(32).schedule(&request, &topo).unwrap();
        // Two replicas (two NPUs computing locally) agree on the order.
        let a = enforced_intra_dim_order(&schedule, &topo).unwrap();
        let b = enforced_intra_dim_order(&schedule, &topo).unwrap();
        assert_eq!(a, b);
        // Enforcing the order does not deadlock the simulator and changes the
        // completion time only marginally for a deterministic run.
        let plain = PipelineSimulator::new(&topo, SimOptions::default()).run(&schedule).unwrap();
        let enforced =
            PipelineSimulator::new(&topo, SimOptions::default().with_enforced_order(true))
                .run(&schedule)
                .unwrap();
        assert!((plain.total_time_ns - enforced.total_time_ns).abs() < plain.total_time_ns * 0.05);
    }
}

#[test]
fn intra_dimension_policy_matters_for_themis_but_not_for_the_baseline() {
    // Sec. 4.3: the baseline's utilisation is invariant to the intra-dimension
    // policy (all chunks have identical schedules); Themis+SCF is at least as
    // good as Themis+FIFO on average.
    let request = gigabyte_request();
    let topo = PresetTopology::SwSwSw3dHomo.build();
    let simulator = PipelineSimulator::new(&topo, SimOptions::default());

    let baseline_schedule = SchedulerKind::Baseline.build(64).schedule(&request, &topo).unwrap();
    let base_fifo = simulator
        .run_with_policy(&baseline_schedule, IntraDimPolicy::Fifo)
        .unwrap();
    let base_scf = simulator
        .run_with_policy(&baseline_schedule, IntraDimPolicy::SmallestChunkFirst)
        .unwrap();
    assert!((base_fifo.total_time_ns - base_scf.total_time_ns).abs() < 1.0);

    let fifo = simulator
        .run(&SchedulerKind::ThemisFifo.build(64).schedule(&request, &topo).unwrap())
        .unwrap();
    let scf = simulator
        .run(&SchedulerKind::ThemisScf.build(64).schedule(&request, &topo).unwrap())
        .unwrap();
    assert!(scf.total_time_ns <= fifo.total_time_ns * 1.01);
}

#[test]
fn sub_topology_collectives_match_the_transformer_partitioning() {
    // The Transformer-1T data-parallel traffic runs on the dimensions outside
    // the 128-NPU model-parallel group; check the split and that collectives
    // execute on both halves.
    let topo = PresetTopology::FcRingSw3d.build();
    let (mp, dp) = topo.split_for_group(128, "mp", "dp").unwrap();
    assert_eq!(mp.num_npus(), 128);
    assert_eq!(dp.num_npus(), 8);
    let request = CollectiveRequest::all_reduce_mib(64.0);
    for part in [&mp, &dp] {
        let report = PipelineSimulator::new(part, SimOptions::default())
            .run(&SchedulerKind::ThemisScf.build(16).schedule(&request, part).unwrap())
            .unwrap();
        assert!(report.total_time_ns > 0.0);
    }
}
