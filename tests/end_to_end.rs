//! Cross-crate integration tests: scheduling → simulation → reporting on the
//! paper's evaluation platforms (driven through the `themis::api` facade),
//! plus data-level correctness of the schedules the Themis scheduler emits.

use themis::collectives::functional::{hierarchical, reference_all_reduce};
use themis::core::enforced_intra_dim_order;
use themis::prelude::*;
use themis::{IdealEstimator, PipelineSimulator};

fn gigabyte_job() -> Job {
    Job::all_reduce(DataSize::from_gib(1.0))
}

#[test]
fn every_scheduler_produces_valid_executable_schedules_on_every_platform() {
    for preset in PresetTopology::all() {
        let platform = Platform::preset(preset);
        for kind in SchedulerKind::all() {
            let job = Job::all_reduce_mib(300.0).chunks(32).scheduler(kind);
            let run = job.run_detailed(&platform).unwrap();
            run.schedule.validate(platform.topology()).unwrap();
            assert!(
                (run.schedule.total_chunk_bytes() - job.size().as_bytes_f64()).abs() < 1.0,
                "{}: chunk bytes do not sum to the collective size",
                preset.name()
            );
            assert!(run.report.total_time_ns > 0.0);
            assert!(run.report.average_bw_utilization() <= 1.0 + 1e-9);
            for util in run.report.per_dim_utilization() {
                assert!((0.0..=1.0 + 1e-9).contains(&util));
            }
        }
    }
}

#[test]
fn themis_never_loses_to_the_baseline_and_never_beats_the_ideal_bound_at_scale() {
    let ideal = IdealEstimator::new();
    for preset in PresetTopology::next_generation() {
        let platform = Platform::preset(preset);
        let baseline = gigabyte_job()
            .scheduler(SchedulerKind::Baseline)
            .run_on(&platform)
            .unwrap();
        let themis = gigabyte_job()
            .scheduler(SchedulerKind::ThemisScf)
            .run_on(&platform)
            .unwrap();
        let bound = ideal
            .communication_time_ns(&gigabyte_job().request(), platform.topology())
            .unwrap();
        assert!(
            themis.total_time_ns() <= baseline.total_time_ns(),
            "{}: Themis slower than baseline",
            preset.name()
        );
        assert!(
            themis.total_time_ns() >= bound,
            "{}: Themis beat the Table 3 ideal bound",
            preset.name()
        );
        // The headline claim: a clear utilisation gap on next-gen platforms.
        assert!(
            themis.average_bw_utilization() > baseline.average_bw_utilization() + 0.1,
            "{}: no utilisation benefit",
            preset.name()
        );
    }
}

#[test]
fn simulated_total_time_respects_per_dimension_transfer_lower_bounds() {
    // No dimension can finish before pushing its scheduled bytes at full BW.
    for preset in [
        PresetTopology::SwSwSw3dHetero,
        PresetTopology::RingFcRingSw4d,
    ] {
        let platform = Platform::preset(preset);
        for kind in SchedulerKind::all() {
            let run = Job::all_reduce_mib(512.0)
                .scheduler(kind)
                .run_detailed(&platform)
                .unwrap();
            let wire = run.schedule.wire_bytes_per_dim(platform.topology());
            for (dim, bytes) in wire.iter().enumerate() {
                let bw = platform
                    .topology()
                    .dim_bandwidth(dim)
                    .unwrap()
                    .as_bytes_per_ns();
                let lower_bound = bytes / bw;
                assert!(
                    run.report.total_time_ns >= lower_bound - 1.0,
                    "{} / {}: dim{} lower bound violated",
                    preset.name(),
                    kind.label(),
                    dim + 1
                );
            }
        }
    }
}

#[test]
fn themis_chunk_schedules_produce_correct_allreduce_results_on_real_data() {
    // Execute the dimension orders chosen by the Themis scheduler with the
    // data-level functional collectives and check the numerical result — the
    // end-to-end version of Observation 1.
    let topo = NetworkTopology::builder("functional-3d")
        .dimension(
            DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 2, 800.0, 0.0).unwrap(),
        )
        .dimension(
            DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 4, 400.0, 0.0).unwrap(),
        )
        .dimension(
            DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 2, 100.0, 0.0).unwrap(),
        )
        .build()
        .unwrap();
    let platform = Platform::custom(topo);
    let schedule = Job::all_reduce_mib(64.0)
        .chunks(8)
        .schedule_on(&platform)
        .unwrap();

    let npus = platform.topology().num_npus();
    let elements = npus * 4;
    let data: Vec<Vec<f64>> = (0..npus)
        .map(|npu| {
            (0..elements)
                .map(|e| (npu * 13 + e * 7) as f64 % 19.0 - 9.0)
                .collect()
        })
        .collect();
    let expected = reference_all_reduce(&data).unwrap();

    let mut seen_non_baseline_order = false;
    for chunk in schedule.chunks() {
        let rs_order = chunk.reduce_scatter_order();
        let ag_order = chunk.all_gather_order();
        if rs_order != vec![0, 1, 2] {
            seen_non_baseline_order = true;
        }
        let result =
            hierarchical::all_reduce(platform.topology(), &data, &rs_order, &ag_order).unwrap();
        for (row, reference) in result.iter().zip(expected.iter()) {
            for (a, b) in row.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
    assert!(
        seen_non_baseline_order,
        "Themis should have diversified at least one chunk's dimension order"
    );
}

#[test]
fn enforced_intra_dimension_order_is_consistent_across_replicas_and_executable() {
    for preset in [PresetTopology::Sw2d, PresetTopology::RingSwSwSw4d] {
        let platform = Platform::preset(preset);
        let job = Job::all_reduce_mib(256.0).chunks(32);
        let schedule = job.schedule_on(&platform).unwrap();
        // Two replicas (two NPUs computing locally) agree on the order.
        let a = enforced_intra_dim_order(&schedule, platform.topology()).unwrap();
        let b = enforced_intra_dim_order(&schedule, platform.topology()).unwrap();
        assert_eq!(a, b);
        // Enforcing the order does not deadlock the simulator and changes the
        // completion time only marginally for a deterministic run.
        let plain = job.run_on(&platform).unwrap();
        let enforced = job
            .run_on(&platform.clone().with_enforced_order(true))
            .unwrap();
        assert!(
            (plain.total_time_ns() - enforced.total_time_ns()).abs() < plain.total_time_ns() * 0.05
        );
    }
}

#[test]
fn intra_dimension_policy_matters_for_themis_but_not_for_the_baseline() {
    // Sec. 4.3: the baseline's utilisation is invariant to the intra-dimension
    // policy (all chunks have identical schedules); Themis+SCF is at least as
    // good as Themis+FIFO on average.
    let platform = Platform::preset(PresetTopology::SwSwSw3dHomo);
    let simulator = PipelineSimulator::new(platform.topology(), platform.options());

    let baseline_schedule = gigabyte_job()
        .scheduler(SchedulerKind::Baseline)
        .schedule_on(&platform)
        .unwrap();
    let base_fifo = simulator
        .run_with_policy(&baseline_schedule, IntraDimPolicy::Fifo)
        .unwrap();
    let base_scf = simulator
        .run_with_policy(&baseline_schedule, IntraDimPolicy::SmallestChunkFirst)
        .unwrap();
    assert!((base_fifo.total_time_ns - base_scf.total_time_ns).abs() < 1.0);

    let fifo = gigabyte_job()
        .scheduler(SchedulerKind::ThemisFifo)
        .run_on(&platform)
        .unwrap();
    let scf = gigabyte_job()
        .scheduler(SchedulerKind::ThemisScf)
        .run_on(&platform)
        .unwrap();
    assert!(scf.total_time_ns() <= fifo.total_time_ns() * 1.01);
}

#[test]
fn sub_topology_collectives_match_the_transformer_partitioning() {
    // The Transformer-1T data-parallel traffic runs on the dimensions outside
    // the 128-NPU model-parallel group; check the split and that collectives
    // execute on both halves.
    let topo = PresetTopology::FcRingSw3d.build();
    let (mp, dp) = topo.split_for_group(128, "mp", "dp").unwrap();
    assert_eq!(mp.num_npus(), 128);
    assert_eq!(dp.num_npus(), 8);
    for part in [mp, dp] {
        let result = Job::all_reduce_mib(64.0)
            .chunks(16)
            .run_on(&Platform::custom(part))
            .unwrap();
        assert!(result.total_time_ns() > 0.0);
    }
}
