//! Integration tests of the training-iteration simulation (the Fig. 12
//! scenario) across workloads, topologies and scheduling policies.

use themis::{CommunicationPolicy, PresetTopology, TrainingSimulator, Workload};

#[test]
fn policy_ordering_holds_for_every_workload_and_topology() {
    // Baseline >= Themis+SCF >= Ideal in total iteration time, everywhere.
    for workload in Workload::all() {
        let simulator = TrainingSimulator::new(workload.config());
        for preset in PresetTopology::next_generation() {
            let topo = preset.build();
            let baseline = simulator
                .simulate_iteration(&topo, CommunicationPolicy::Baseline)
                .unwrap();
            let themis = simulator
                .simulate_iteration(&topo, CommunicationPolicy::ThemisScf)
                .unwrap();
            let ideal = simulator
                .simulate_iteration(&topo, CommunicationPolicy::Ideal)
                .unwrap();
            assert!(
                themis.total_ns() <= baseline.total_ns() * 1.0001,
                "{workload} on {}: Themis slower than baseline",
                preset.name()
            );
            assert!(
                ideal.total_ns() <= themis.total_ns() * 1.0001,
                "{workload} on {}: Ideal slower than Themis",
                preset.name()
            );
            // Compute time is identical across policies.
            assert!((baseline.compute_ns() - themis.compute_ns()).abs() < 1e-3);
            assert!((baseline.compute_ns() - ideal.compute_ns()).abs() < 1e-3);
        }
    }
}

#[test]
fn training_speedups_fall_in_a_plausible_band() {
    // The paper reports average Themis speedups of 1.49x (ResNet-152), 1.30x
    // (GNMT), 1.30x (DLRM) and 1.25x (Transformer-1T). The reproduction runs
    // on a different (from-scratch) substrate, so only the band is checked:
    // a clear win over the baseline but below the communication-free limit.
    for workload in Workload::all() {
        let simulator = TrainingSimulator::new(workload.config());
        let mut speedups = Vec::new();
        for preset in PresetTopology::next_generation() {
            let topo = preset.build();
            let baseline = simulator
                .simulate_iteration(&topo, CommunicationPolicy::Baseline)
                .unwrap();
            let themis = simulator
                .simulate_iteration(&topo, CommunicationPolicy::ThemisScf)
                .unwrap();
            speedups.push(themis.speedup_over(&baseline));
        }
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(
            (1.05..=2.5).contains(&mean),
            "{workload}: mean speedup {mean:.2} outside the plausible band"
        );
    }
}

#[test]
fn exposed_communication_fraction_reflects_the_workload_mix() {
    let topo = PresetTopology::SwSwSw3dHomo.build();

    // Data-parallel vision/NLP models expose only DP communication.
    for workload in [Workload::ResNet152, Workload::Gnmt] {
        let breakdown = TrainingSimulator::new(workload.config())
            .simulate_iteration(&topo, CommunicationPolicy::Baseline)
            .unwrap();
        assert_eq!(breakdown.exposed_mp_comm_ns, 0.0);
        assert!(breakdown.exposed_dp_comm_ns > 0.0);
    }

    // Transformer-1T is dominated by model-parallel communication.
    let transformer = TrainingSimulator::new(Workload::Transformer1T.config())
        .simulate_iteration(&topo, CommunicationPolicy::Baseline)
        .unwrap();
    assert!(transformer.exposed_mp_comm_ns > transformer.exposed_dp_comm_ns);

    // DLRM's All-To-All is overlapped; DP gradients dominate its exposure.
    let dlrm = TrainingSimulator::new(Workload::Dlrm.config())
        .simulate_iteration(&topo, CommunicationPolicy::Baseline)
        .unwrap();
    assert!(dlrm.exposed_dp_comm_ns > dlrm.exposed_mp_comm_ns);
}

#[test]
fn themis_gains_grow_with_the_communication_fraction() {
    // Amdahl's-law sanity check (Sec. 6.2): the workload with the larger
    // exposed-communication fraction gains more from Themis on the same
    // topology.
    let topo = PresetTopology::SwSwSw3dHetero.build();
    let mut results = Vec::new();
    for workload in [Workload::ResNet152, Workload::Transformer1T] {
        let simulator = TrainingSimulator::new(workload.config());
        let baseline = simulator
            .simulate_iteration(&topo, CommunicationPolicy::Baseline)
            .unwrap();
        let themis = simulator
            .simulate_iteration(&topo, CommunicationPolicy::ThemisScf)
            .unwrap();
        results.push((baseline.comm_fraction(), themis.speedup_over(&baseline)));
    }
    let (frac_a, speed_a) = results[0];
    let (frac_b, speed_b) = results[1];
    if frac_a > frac_b {
        assert!(speed_a >= speed_b * 0.95);
    } else {
        assert!(speed_b >= speed_a * 0.95);
    }
}

#[test]
fn communication_utilization_is_reported_and_bounded() {
    let topo = PresetTopology::RingFcRingSw4d.build();
    for workload in Workload::all() {
        let simulator = TrainingSimulator::new(workload.config());
        for policy in CommunicationPolicy::all() {
            let breakdown = simulator.simulate_iteration(&topo, policy).unwrap();
            assert!(
                (0.0..=1.0 + 1e-9).contains(&breakdown.comm_utilization),
                "{workload} / {policy}: utilisation {}",
                breakdown.comm_utilization
            );
        }
        let baseline = simulator
            .simulate_iteration(&topo, CommunicationPolicy::Baseline)
            .unwrap();
        let themis = simulator
            .simulate_iteration(&topo, CommunicationPolicy::ThemisScf)
            .unwrap();
        assert!(themis.comm_utilization >= baseline.comm_utilization - 1e-9);
    }
}
