//! Property-style tests of the scheduling layer: on pseudo-randomly generated
//! multi-dimensional topologies and collective sizes, the schedulers must
//! always emit valid, size-preserving, deterministic schedules, and the
//! simulator must respect its physical invariants. Runs are driven through
//! the `themis::api` facade.
//!
//! Deterministic seeded generation stands in for `proptest` (unavailable in
//! the offline build environment).

mod common;

use common::Lcg;
use themis::core::{DimLoadTracker, Splitter};
use themis::prelude::*;
use themis::IdealEstimator;

/// Generates a pseudo-random dimension (size 2–16, bandwidth 50–2000 Gbps,
/// latency 0–2000 ns). Switch dimensions are constrained to power-of-two
/// sizes because the halving-doubling algorithm requires it.
fn random_dimension(rng: &mut Lcg) -> DimensionSpec {
    let kind = match rng.range(0, 2) {
        0 => TopologyKind::Ring,
        1 => TopologyKind::FullyConnected,
        _ => TopologyKind::Switch,
    };
    let size = match kind {
        TopologyKind::Switch => 1usize << rng.range(1, 4),
        _ => rng.range(2, 16),
    };
    let bandwidth = rng.uniform(50.0, 2000.0);
    let latency = rng.uniform(0.0, 2000.0);
    DimensionSpec::with_aggregate_bandwidth(kind, size, bandwidth, latency)
        .expect("generated dimensions are valid")
}

/// Generates a pseudo-random 2–4 dimensional topology.
fn random_topology(rng: &mut Lcg, case: usize) -> NetworkTopology {
    let dims = (0..rng.range(2, 4))
        .map(|_| random_dimension(rng))
        .collect();
    NetworkTopology::new(format!("generated-{case}"), dims).expect("generated topologies are valid")
}

fn random_collective_kind(rng: &mut Lcg) -> CollectiveKind {
    CollectiveKind::all()[rng.range(0, 3)]
}

#[test]
fn themis_schedules_are_valid_and_cover_the_whole_collective() {
    let mut rng = Lcg::new(11);
    for case in 0..48 {
        let platform = Platform::custom(random_topology(&mut rng, case));
        let kind = random_collective_kind(&mut rng);
        let size = DataSize::from_mib(rng.uniform(1.0, 512.0));
        let chunks = rng.range(1, 96);
        let schedule = Job::new(kind, size)
            .chunks(chunks)
            .scheduler(SchedulerKind::ThemisScf)
            .schedule_on(&platform)
            .unwrap();
        schedule.validate(platform.topology()).unwrap();
        assert_eq!(schedule.chunks().len(), chunks);
        let total: f64 = schedule.total_chunk_bytes();
        assert!((total - size.as_bytes_f64()).abs() < 1.0, "case {case}");
        // Every chunk visits each dimension exactly once per phase, and the
        // All-Gather order is the reverse of the Reduce-Scatter order for
        // All-Reduce chunks (Algorithm 1, line 8).
        if kind == CollectiveKind::AllReduce {
            for chunk in schedule.chunks() {
                let rs = chunk.reduce_scatter_order();
                let mut ag = chunk.all_gather_order();
                ag.reverse();
                assert_eq!(rs, ag, "case {case}");
            }
        }
    }
}

#[test]
fn scheduling_is_deterministic() {
    let mut rng = Lcg::new(23);
    for case in 0..24 {
        let platform = Platform::custom(random_topology(&mut rng, case));
        let job = Job::all_reduce_mib(rng.uniform(1.0, 256.0)).chunks(32);
        let a = job.schedule_on(&platform).unwrap();
        let b = job.schedule_on(&platform).unwrap();
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn simulation_respects_physical_invariants() {
    let mut rng = Lcg::new(37);
    for case in 0..36 {
        let platform = Platform::custom(random_topology(&mut rng, case));
        let kind = SchedulerKind::all()[rng.range(0, 2)];
        let job = Job::all_reduce_mib(rng.uniform(1.0, 256.0))
            .chunks(16)
            .scheduler(kind);
        let run = job.run_detailed(&platform).unwrap();
        let report = &run.report;

        // Completion time is positive and at least the Table 3 ideal bound.
        let bound = IdealEstimator::new()
            .communication_time_ns(&job.request(), platform.topology())
            .unwrap();
        assert!(report.total_time_ns > 0.0, "case {case}");
        assert!(report.total_time_ns >= bound * 0.999, "case {case}");

        // Utilisations are fractions; busy time never exceeds completion time.
        assert!(report.average_bw_utilization() <= 1.0 + 1e-9, "case {case}");
        for (dim, util) in report.per_dim_utilization().iter().enumerate() {
            assert!((0.0..=1.0 + 1e-9).contains(util), "case {case}");
            assert!(
                report.dims[dim].busy_ns <= report.total_time_ns + 1.0,
                "case {case}"
            );
        }

        // The bytes that crossed each dimension match the schedule's prediction.
        let predicted = run.schedule.wire_bytes_per_dim(platform.topology());
        for (dim, expected) in predicted.iter().enumerate() {
            assert!(
                (report.dims[dim].wire_bytes - expected).abs() < 1.0,
                "case {case}"
            );
        }
    }
}

#[test]
fn splitter_chunks_always_sum_to_the_collective_size() {
    let mut rng = Lcg::new(53);
    for case in 0..128 {
        let bytes = 1 + rng.next_u64() % (1u64 << 40);
        let chunks = rng.range(1, 511);
        let splitter = Splitter::new(chunks).unwrap();
        let sizes = splitter.split(DataSize::from_bytes(bytes)).unwrap();
        assert_eq!(sizes.len(), chunks, "case {case}");
        let total: f64 = sizes.iter().sum();
        assert_eq!(total as u64, bytes, "case {case}");
        let max = sizes.iter().cloned().fold(f64::MIN, f64::max);
        let min = sizes.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min <= 1.0, "case {case}");
    }
}

#[test]
fn load_tracker_orderings_are_consistent_permutations() {
    let mut rng = Lcg::new(71);
    for case in 0..64 {
        let loads: Vec<f64> = (0..rng.range(1, 7))
            .map(|_| rng.uniform(0.0, 1e9))
            .collect();
        let mut tracker = DimLoadTracker::new(loads.len());
        tracker.reset(loads.clone());
        let ascending = tracker.dims_by_ascending_load();
        let descending = tracker.dims_by_descending_load();
        // Both orders are permutations of the dimension indices.
        let mut sorted_asc = ascending.clone();
        sorted_asc.sort_unstable();
        assert_eq!(
            &sorted_asc,
            &(0..loads.len()).collect::<Vec<_>>(),
            "case {case}"
        );
        // Ascending order is non-decreasing in load; descending non-increasing.
        for pair in ascending.windows(2) {
            assert!(loads[pair[0]] <= loads[pair[1]] + 1e-12, "case {case}");
        }
        for pair in descending.windows(2) {
            assert!(loads[pair[0]] >= loads[pair[1]] - 1e-12, "case {case}");
        }
        assert!(tracker.load_gap() >= 0.0, "case {case}");
    }
}
