//! Integration tests for cross-process campaign sharding
//! (`themis::api::shard`) and the serializable schedule cache.
//!
//! The load-bearing contract: for any plan — any strategy, any shard count,
//! shards executed by any runner backend, specs round-tripped through JSON
//! or not — merging the partial reports reproduces the unsharded
//! `Runner::execute` / `Runner::execute_streams` report **bit for bit**.

use themis::api::shard::{merge_reports, ShardPlan, ShardReport, ShardSpec, ShardStrategy};
use themis::prelude::*;
use themis::ScheduleCache;
use themis_workloads::Workload;

/// Shard counts exercised everywhere: even, odd, and more shards than some
/// matrices have cells.
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// A campaign matrix covering every scheduler kind on every preset topology.
fn campaign() -> Campaign {
    Campaign::new()
        .topologies(PresetTopology::all())
        .schedulers(SchedulerKind::all())
        .sizes_mib([24.0, 96.0])
        .chunk_counts([4])
}

/// A stream campaign mixing a hand-built stream and a training-derived one,
/// over every scheduler kind.
fn stream_campaign() -> StreamCampaign {
    let pair = StreamJob::named("pair")
        .push(QueuedCollective::all_reduce_mib("g2", 48.0))
        .push(QueuedCollective::all_reduce_mib("g1", 48.0).issued_at(2_000.0))
        .chunks(4);
    let resnet = StreamJob::from_training(&TrainingJob::new(Workload::ResNet152))
        .expect("ResNet-152 derives a stream")
        .chunks(2);
    StreamCampaign::new()
        .topologies([PresetTopology::Sw2d, PresetTopology::FcRingSw3d])
        .schedulers(SchedulerKind::all())
        .streams([pair, resnet])
}

#[test]
fn merged_campaign_is_bit_identical_to_unsharded_execute() {
    let specs = campaign().expand().unwrap();
    let reference = CampaignReport::new(Runner::sequential().execute(&specs).unwrap());
    for strategy in [ShardStrategy::RoundRobin, ShardStrategy::CostBalanced] {
        for shard_count in SHARD_COUNTS {
            let plan = strategy.plan(&specs, shard_count);
            let shards = ShardSpec::campaign_shards(&specs, &plan).unwrap();
            let partials: Vec<ShardReport> = shards
                .iter()
                .enumerate()
                .map(|(i, shard)| {
                    // Alternate runner backends across shards: the merged
                    // report must not depend on how each worker executes.
                    let runner = if i % 2 == 0 {
                        Runner::sequential()
                    } else {
                        Runner::parallel_threads(2)
                    };
                    shard.execute(&runner).unwrap()
                })
                .collect();
            let merged = merge_reports(&partials).unwrap();
            assert_eq!(
                merged.campaign(),
                Some(&reference),
                "{strategy:?} x {shard_count} shards"
            );
            assert_eq!(merged.len(), specs.len());
            // Every schedule is computed exactly once *somewhere*: the summed
            // lookups cover each cell of each shard.
            assert_eq!(merged.cache().lookups() as usize, specs.len());
        }
    }
}

#[test]
fn merged_stream_campaign_is_bit_identical_to_unsharded_execute_streams() {
    let specs = stream_campaign().expand().unwrap();
    let reference =
        StreamCampaignReport::new(Runner::sequential().execute_streams(&specs).unwrap());
    for strategy in [ShardStrategy::RoundRobin, ShardStrategy::CostBalanced] {
        for shard_count in SHARD_COUNTS {
            let plan = strategy.plan(&specs, shard_count);
            let shards = ShardSpec::stream_shards(&specs, &plan).unwrap();
            let partials: Vec<ShardReport> = shards
                .iter()
                .map(|shard| shard.execute(&Runner::sequential()).unwrap())
                .collect();
            let merged = merge_reports(&partials).unwrap();
            assert_eq!(
                merged.stream(),
                Some(&reference),
                "{strategy:?} x {shard_count} shards"
            );
            assert!(merged.campaign().is_none());
        }
    }
}

#[test]
fn sharding_survives_the_json_round_trip_to_worker_processes() {
    // The cross-process story end to end, minus the process boundary: specs
    // travel to workers as JSON, partial reports travel back as JSON, and
    // the merged result still matches the unsharded run bit for bit.
    let specs = campaign().expand().unwrap();
    let reference = CampaignReport::new(Runner::sequential().execute(&specs).unwrap());
    let plan = ShardPlan::from_cells(ShardStrategy::CostBalanced, &specs, 3);
    let shards = ShardSpec::campaign_shards(&specs, &plan).unwrap();
    let partials: Vec<ShardReport> = shards
        .iter()
        .map(|shard| {
            let wire = shard.to_json();
            let remote = ShardSpec::from_json(&wire).unwrap();
            assert_eq!(&remote, shard);
            let report = remote.execute(&Runner::sequential()).unwrap();
            ShardReport::from_json(&report.to_json()).unwrap()
        })
        .collect();
    let merged = merge_reports(&partials).unwrap();
    assert_eq!(merged.campaign(), Some(&reference));

    // The merged report itself round-trips too.
    let back = themis::MergedReport::from_json(&merged.to_json()).unwrap();
    assert_eq!(back, merged);
}

#[test]
fn shard_roundtrip_is_lossless_for_every_preset_platform() {
    // One campaign cell per preset platform (including non-default sim
    // options) and a training-derived stream job: encode → decode → equal.
    let specs: Vec<RunSpec> = PresetTopology::all()
        .into_iter()
        .map(|preset| {
            RunSpec::new(
                Platform::preset(preset)
                    .with_options(SimOptions::default().with_op_log(false))
                    .with_enforced_order(true),
                Job::all_reduce_mib(192.0)
                    .chunks(16)
                    .scheduler(SchedulerKind::ThemisFifo),
            )
        })
        .collect();
    let plan = ShardPlan::round_robin(specs.len(), 2);
    for shard in ShardSpec::campaign_shards(&specs, &plan).unwrap() {
        let back = ShardSpec::from_json(&shard.to_json()).unwrap();
        assert_eq!(back, shard);
    }

    let stream =
        StreamJob::from_training(&TrainingJob::new(Workload::Dlrm)).expect("DLRM derives a stream");
    let stream_specs: Vec<StreamSpec> = PresetTopology::all()
        .into_iter()
        .map(|preset| StreamSpec::new(Platform::preset(preset), stream.clone()))
        .collect();
    let plan = ShardPlan::round_robin(stream_specs.len(), 3);
    for shard in ShardSpec::stream_shards(&stream_specs, &plan).unwrap() {
        let back = ShardSpec::from_json(&shard.to_json()).unwrap();
        assert_eq!(back, shard, "stream shard {}", shard.shard_index());
        assert!(back.is_stream());
    }

    // Malformed spec files are rejected.
    assert!(ShardSpec::from_json("{}").is_err());
    assert!(ShardSpec::from_json("{\"version\":1,\"kind\":\"shard-spec\",\"cells\":\"weird\",\"shard_index\":0,\"shard_count\":1,\"entries\":[]}").is_err());
}

#[test]
fn sharded_execution_through_one_warm_plan_matches_the_unsharded_run() {
    // Every shard of both matrix kinds served from one warm `SimPlanCache`
    // (shared schedules + cost tables) must still merge to the bit-exact
    // unsharded report — and a second pass over the same plan is served
    // entirely from it.
    let specs = campaign().expand().unwrap();
    let direct = CampaignReport::new(Runner::sequential().execute(&specs).unwrap());
    let stream_specs = stream_campaign().expand().unwrap();
    let stream_direct =
        StreamCampaignReport::new(Runner::sequential().execute_streams(&stream_specs).unwrap());

    let plan = SimPlanCache::new();
    let runner = Runner::sequential();
    for strategy in [ShardStrategy::RoundRobin, ShardStrategy::CostBalanced] {
        let shard_plan = ShardPlan::from_cells(strategy, &specs, 3);
        let shards = ShardSpec::campaign_shards(&specs, &shard_plan).unwrap();
        let partials: Vec<ShardReport> = shards
            .iter()
            .map(|shard| shard.execute_with_cache(&runner, &plan).unwrap())
            .collect();
        assert_eq!(merge_reports(&partials).unwrap().campaign(), Some(&direct));

        let stream_shard_plan = ShardPlan::from_cells(strategy, &stream_specs, 3);
        let stream_shards = ShardSpec::stream_shards(&stream_specs, &stream_shard_plan).unwrap();
        let stream_partials: Vec<ShardReport> = stream_shards
            .iter()
            .map(|shard| shard.execute_with_cache(&runner, &plan).unwrap())
            .collect();
        assert_eq!(
            merge_reports(&stream_partials).unwrap().stream(),
            Some(&stream_direct)
        );
    }
    // The second strategy pass hit the warm plan for every cell.
    assert!(plan.schedules().hits() > 0);
    assert!(plan.cost_tables().hits() > 0);
}

#[test]
fn dumped_cache_warm_starts_a_second_campaign_with_nonzero_hits() {
    let specs = campaign().expand().unwrap();
    let plan = ShardPlan::round_robin(specs.len(), 2);
    let shards = ShardSpec::campaign_shards(&specs, &plan).unwrap();
    let runner = Runner::sequential();

    // First campaign: cold cache, dump the schedules it built.
    let cold = SimPlanCache::new();
    let first: Vec<ShardReport> = shards
        .iter()
        .map(|shard| shard.execute_with_cache(&runner, &cold).unwrap())
        .collect();
    let first_merged = merge_reports(&first).unwrap();
    assert!(first_merged.cache().misses > 0);
    assert_eq!(first_merged.cache().lookups() as usize, specs.len());
    let dump = cold.schedules().dump();

    // Second campaign: load the dump into a fresh cache. Every schedule is
    // served from the file — zero misses, nonzero hits — and the report is
    // unchanged.
    let warm = ScheduleCache::new();
    warm.load(&dump).unwrap();
    let warm = SimPlanCache::with_schedules(warm);
    let second: Vec<ShardReport> = shards
        .iter()
        .map(|shard| shard.execute_with_cache(&runner, &warm).unwrap())
        .collect();
    let second_merged = merge_reports(&second).unwrap();
    assert_eq!(second_merged.campaign(), first_merged.campaign());
    assert!(second_merged.cache().hits > 0);
    assert_eq!(second_merged.cache().misses, 0);
    assert_eq!(second_merged.cache().hit_rate(), 1.0);
}

#[test]
fn stream_shards_share_schedules_through_a_dumped_cache() {
    // Training-derived streams repeat gradient sizes heavily; a dumped cache
    // from one stream campaign warm-starts the next.
    let specs = stream_campaign().expand().unwrap();
    let plan = ShardPlan::from_cells(ShardStrategy::CostBalanced, &specs, 3);
    let shards = ShardSpec::stream_shards(&specs, &plan).unwrap();
    let runner = Runner::sequential();

    let cold = SimPlanCache::new();
    let first: Vec<ShardReport> = shards
        .iter()
        .map(|shard| shard.execute_with_cache(&runner, &cold).unwrap())
        .collect();
    let reference = merge_reports(&first).unwrap();

    let warm = ScheduleCache::new();
    assert!(warm.load(&cold.schedules().dump()).unwrap() > 0);
    let warm = SimPlanCache::with_schedules(warm);
    let second: Vec<ShardReport> = shards
        .iter()
        .map(|shard| shard.execute_with_cache(&runner, &warm).unwrap())
        .collect();
    let merged = merge_reports(&second).unwrap();
    assert_eq!(merged.stream(), reference.stream());
    assert!(merged.cache().hits > 0);
    assert_eq!(merged.cache().misses, 0);
}

#[test]
fn merge_rejects_mixed_kinds_and_incomplete_matrices() {
    let specs = campaign().expand().unwrap();
    let stream_specs = stream_campaign().expand().unwrap();
    let runner = Runner::sequential();

    let campaign_plan = ShardPlan::round_robin(specs.len(), 2);
    let campaign_partials: Vec<ShardReport> = ShardSpec::campaign_shards(&specs, &campaign_plan)
        .unwrap()
        .iter()
        .map(|shard| shard.execute(&runner).unwrap())
        .collect();

    let stream_plan = ShardPlan::round_robin(stream_specs.len(), 2);
    let stream_partials: Vec<ShardReport> = ShardSpec::stream_shards(&stream_specs, &stream_plan)
        .unwrap()
        .iter()
        .map(|shard| shard.execute(&runner).unwrap())
        .collect();

    // Campaign and stream partials cannot merge together.
    assert!(matches!(
        merge_reports(&[campaign_partials[0].clone(), stream_partials[1].clone()]),
        Err(ThemisError::Campaign { .. })
    ));
    // Two copies of the same shard do not cover the matrix.
    assert!(matches!(
        merge_reports(&[campaign_partials[0].clone(), campaign_partials[0].clone()]),
        Err(ThemisError::Campaign { .. })
    ));
    // The valid sets still merge.
    assert!(merge_reports(&campaign_partials).is_ok());
    assert!(merge_reports(&stream_partials).is_ok());
}
