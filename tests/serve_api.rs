//! Integration tests for the resident campaign service
//! (`themis::api::serve`) and the in-process half of the orchestrator
//! (`themis::api::orchestrator`).
//!
//! The load-bearing contracts: a malformed request line never crashes the
//! service (it answers a structured `status:"error"` response and keeps
//! serving); campaign/stream/shard responses are **bit-identical** to the
//! direct `Runner` paths; and identical cells — sequential or racing across
//! threads — are simulated exactly once, with the repeats served from the
//! resident single-flight cache. Real-process orchestration is covered by
//! `crates/bench/tests/serve_e2e.rs`.

use std::sync::Arc;
use themis::api::json::Json;
use themis::api::serve::{campaign_cells_to_json, stream_cells_to_json};
use themis::api::shard::{ShardPlan, ShardSpec, ShardStrategy};
use themis::prelude::*;

/// A small campaign matrix over every scheduler kind.
fn campaign_specs() -> Vec<RunSpec> {
    Campaign::new()
        .topologies([PresetTopology::Sw2d])
        .schedulers(SchedulerKind::all())
        .sizes_mib([16.0, 48.0])
        .chunk_counts([4])
        .expand()
        .unwrap()
}

/// A two-stream matrix over every scheduler kind.
fn stream_specs() -> Vec<StreamSpec> {
    let stream = StreamJob::named("pair")
        .push(QueuedCollective::all_reduce_mib("g2", 24.0))
        .push(QueuedCollective::all_reduce_mib("g1", 24.0).issued_at(2_000.0))
        .chunks(4);
    StreamCampaign::new()
        .topologies([PresetTopology::Sw2d])
        .schedulers(SchedulerKind::all())
        .streams([stream])
        .expand()
        .unwrap()
}

fn request(id: usize, kind: &str, extra: Vec<(&'static str, Json)>) -> String {
    let mut fields = vec![
        ("id", Json::Num(id as f64)),
        ("kind", Json::Str(kind.to_string())),
    ];
    fields.extend(extra);
    Json::obj(fields).render()
}

fn parse_ok(response: &str) -> Json {
    let response = Json::parse(response).expect("responses are valid JSON");
    assert_eq!(
        response.field("status").unwrap().as_str().unwrap(),
        "ok",
        "expected an ok response, got: {response:?}"
    );
    response
}

#[test]
fn malformed_requests_get_structured_errors_not_crashes() {
    let service = Service::default();
    for bad in [
        "{oops",                                      // unparseable JSON
        "42",                                         // not an object
        r#"{"id":1}"#,                                // missing kind
        r#"{"id":2,"kind":"nope"}"#,                  // unknown kind
        r#"{"id":3,"kind":"campaign"}"#,              // missing cells
        r#"{"id":4,"kind":"campaign","cells":[{}]}"#, // cells without specs
        r#"{"id":5,"kind":"shard","spec":{"kind":"wrong"}}"#,
        r#"{"id":6,"kind":"sweep","cells":"campaign","entries":[]}"#, // no worker
    ] {
        let response = Json::parse(&service.handle_line(bad)).unwrap();
        assert_eq!(
            response.field("status").unwrap().as_str().unwrap(),
            "error",
            "request {bad:?} should be answered with a structured error"
        );
        assert!(
            !response
                .field("error")
                .unwrap()
                .as_str()
                .unwrap()
                .is_empty(),
            "error responses carry a reason"
        );
    }
    // The service keeps serving after every one of them.
    let pong = parse_ok(&service.handle_line(&request(7, "ping", vec![])));
    assert!(pong
        .field("result")
        .unwrap()
        .field("pong")
        .unwrap()
        .as_bool()
        .unwrap());
}

#[test]
fn error_responses_echo_the_request_id() {
    let service = Service::default();
    let response = Json::parse(&service.handle_line(r#"{"id":41,"kind":"nope"}"#)).unwrap();
    assert_eq!(response.field("id").unwrap().as_usize().unwrap(), 41);
    // An unparseable line has no id to echo; it comes back null.
    let response = Json::parse(&service.handle_line("{oops")).unwrap();
    assert_eq!(response.field("id").unwrap(), &Json::Null);
}

#[test]
fn campaign_responses_are_bit_identical_to_runner_execute() {
    let specs = campaign_specs();
    let reference = CampaignReport::new(Runner::sequential().execute(&specs).unwrap());
    let service = Service::default();
    let response = parse_ok(&service.handle_line(&request(
        1,
        "campaign",
        vec![("cells", campaign_cells_to_json(&specs))],
    )));
    let report = CampaignReport::from_json(&response.field("result").unwrap().render()).unwrap();
    assert_eq!(report, reference);
}

#[test]
fn stream_responses_are_bit_identical_to_runner_execute_streams() {
    let specs = stream_specs();
    let reference =
        StreamCampaignReport::new(Runner::sequential().execute_streams(&specs).unwrap());
    let service = Service::default();
    let response = parse_ok(&service.handle_line(&request(
        1,
        "stream",
        vec![("cells", stream_cells_to_json(&specs))],
    )));
    let report =
        StreamCampaignReport::from_json(&response.field("result").unwrap().render()).unwrap();
    assert_eq!(report, reference);
}

#[test]
fn shard_requests_execute_against_the_resident_plan() {
    let specs = campaign_specs();
    let plan = ShardPlan::from_cells(ShardStrategy::CostBalanced, &specs, 2);
    let shards = ShardSpec::campaign_shards(&specs, &plan).unwrap();
    let service = Service::default();
    for shard in &shards {
        let spec_json = Json::parse(&shard.to_json()).unwrap();
        let response = parse_ok(&service.handle_line(&request(
            shard.shard_index(),
            "shard",
            vec![("spec", spec_json)],
        )));
        let report =
            themis::api::shard::ShardReport::from_json(&response.field("result").unwrap().render())
                .unwrap();
        assert_eq!(report.shard_index(), shard.shard_index());
        assert_eq!(report.len(), shard.len());
    }
}

#[test]
fn the_second_identical_request_is_served_without_simulating() {
    let specs = campaign_specs();
    let service = Service::default();
    let body = || vec![("cells", campaign_cells_to_json(&specs))];
    let first = parse_ok(&service.handle_line(&request(1, "campaign", body())));
    let second = parse_ok(&service.handle_line(&request(2, "campaign", body())));
    assert_eq!(
        first.field("result").unwrap(),
        second.field("result").unwrap(),
        "cached responses must stay bit-identical"
    );
    let delta = |response: &Json, counter: &str| {
        response
            .field("cache")
            .unwrap()
            .field("cells")
            .unwrap()
            .field(counter)
            .unwrap()
            .as_usize()
            .unwrap()
    };
    assert_eq!(delta(&first, "misses"), specs.len());
    assert_eq!(delta(&second, "hits"), specs.len());
    assert_eq!(delta(&second, "misses"), 0);
}

#[test]
fn concurrent_identical_requests_are_deduplicated_by_single_flight() {
    let specs = campaign_specs();
    let service = Arc::new(Service::default());
    let line = request(
        1,
        "campaign",
        vec![("cells", campaign_cells_to_json(&specs))],
    );
    let results: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let service = Arc::clone(&service);
                let line = line.clone();
                scope.spawn(move || parse_ok(&service.handle_line(&line)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for pair in results.windows(2) {
        assert_eq!(
            pair[0].field("result").unwrap(),
            pair[1].field("result").unwrap(),
            "racing requests must agree bit for bit"
        );
    }
    // Single flight: across all four racing requests, every cell was
    // simulated exactly once; all other lookups were (possibly waiting) hits.
    let stats = parse_ok(&service.handle_line(&request(9, "cache-stats", vec![])));
    let cells = stats.field("result").unwrap().field("cells").unwrap();
    assert_eq!(
        cells.field("misses").unwrap().as_usize().unwrap(),
        specs.len()
    );
    assert_eq!(
        cells.field("hits").unwrap().as_usize().unwrap(),
        3 * specs.len()
    );
}

#[test]
fn the_resident_cell_cache_is_bounded() {
    let specs = campaign_specs();
    let service = Service::new(ServeOptions {
        max_resident_cells: 2,
        ..ServeOptions::default()
    });
    parse_ok(&service.handle_line(&request(
        1,
        "campaign",
        vec![("cells", campaign_cells_to_json(&specs))],
    )));
    assert!(specs.len() > 2);
    assert_eq!(service.resident_cells(), 2);
    // cache-stats reports the bounded resident size as a plain counter.
    let stats = parse_ok(&service.handle_line(&request(2, "cache-stats", vec![])));
    let resident = stats.field("result").unwrap().field("resident").unwrap();
    assert_eq!(resident.field("cells").unwrap().as_usize().unwrap(), 2);
}

#[test]
fn serve_loop_answers_every_line_and_stops_on_shutdown() {
    let specs = campaign_specs();
    let lines = [
        request(1, "ping", vec![]),
        request(
            2,
            "campaign",
            vec![("cells", campaign_cells_to_json(&specs))],
        ),
        "{oops".to_string(),
        request(4, "shutdown", vec![]),
        request(5, "ping", vec![]), // after shutdown: must not be served
    ]
    .join("\n");
    let service = Service::default();
    let mut out: Vec<u8> = Vec::new();
    service
        .serve(std::io::Cursor::new(lines.into_bytes()), &mut out)
        .unwrap();
    assert!(service.shutdown_requested());
    let responses: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|line| Json::parse(line).unwrap())
        .collect();
    assert_eq!(responses.len(), 4, "the post-shutdown line is not served");
    assert_eq!(
        responses[2].field("status").unwrap().as_str().unwrap(),
        "error"
    );
    assert!(responses[3]
        .field("result")
        .unwrap()
        .field("shutting_down")
        .unwrap()
        .as_bool()
        .unwrap());
}

#[test]
fn cache_publish_round_trips_schedules_across_services() {
    let dir = std::env::temp_dir().join(format!("serve-api-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_file = dir.join("schedules.json");
    let _ = std::fs::remove_file(&cache_file);

    let specs = campaign_specs();
    let first = Service::new(ServeOptions {
        cache_file: Some(cache_file.clone()),
        ..ServeOptions::default()
    });
    assert_eq!(first.load_cache_file().unwrap(), 0, "cold start");
    parse_ok(&first.handle_line(&request(
        1,
        "campaign",
        vec![("cells", campaign_cells_to_json(&specs))],
    )));
    let published = first.publish_cache_file().unwrap();
    assert!(published > 0);

    // A fresh service warm-starts from the published file: its first
    // identical campaign request hits the schedule cache on every cell.
    let second = Service::new(ServeOptions {
        cache_file: Some(cache_file.clone()),
        ..ServeOptions::default()
    });
    assert_eq!(second.load_cache_file().unwrap(), published);
    let response = parse_ok(&second.handle_line(&request(
        2,
        "campaign",
        vec![("cells", campaign_cells_to_json(&specs))],
    )));
    let schedule_hits = response
        .field("cache")
        .unwrap()
        .field("schedules")
        .unwrap()
        .field("hits")
        .unwrap()
        .as_usize()
        .unwrap();
    assert!(schedule_hits > 0, "published schedules are reused");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orchestrator_reports_unspawnable_workers_as_serve_errors() {
    let specs = campaign_specs();
    let mut options = OrchestratorOptions::new("/nonexistent/shard-worker");
    options.work_dir = std::env::temp_dir().join(format!("serve-orc-{}", std::process::id()));
    let err = Orchestrator::new(options.clone())
        .run_campaign(&specs)
        .unwrap_err();
    assert!(matches!(err, ThemisError::Serve { .. }), "{err}");
    assert!(err.to_string().contains("shard-worker"), "{err}");
    let _ = std::fs::remove_dir_all(&options.work_dir);
}

#[test]
fn orchestrating_zero_shards_is_rejected() {
    let orchestrator = Orchestrator::new(OrchestratorOptions::new("unused"));
    let err = orchestrator.run_shards(&[]).unwrap_err();
    assert!(matches!(err, ThemisError::Serve { .. }));
}

/// Deterministic 64-bit LCG (Knuth MMIX constants) for the parser fuzz test:
/// the seed is fixed, so a failure reproduces exactly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() >> 16) as usize % bound.max(1)
    }
}

#[test]
fn fuzzed_request_lines_always_get_structured_responses() {
    let service = Service::default();
    let base = request(
        77,
        "campaign",
        vec![("cells", campaign_cells_to_json(&campaign_specs()))],
    );
    let mut rng = Lcg(0xD15EA5E);
    for round in 0..500usize {
        let mut bytes = base.clone().into_bytes();
        match round % 3 {
            // Replace a few bytes with random printable ASCII (valid UTF-8,
            // rarely valid JSON).
            0 => {
                for _ in 0..1 + rng.below(4) {
                    let at = rng.below(bytes.len());
                    bytes[at] = 0x20 + (rng.below(0x5f) as u8);
                }
            }
            // Truncate the line anywhere, including inside a token.
            1 => bytes.truncate(rng.below(bytes.len())),
            // Truncate, then mutate what is left.
            _ => {
                bytes.truncate(1 + rng.below(bytes.len() - 1));
                let at = rng.below(bytes.len());
                bytes[at] = 0x20 + (rng.below(0x5f) as u8);
            }
        }
        let line = String::from_utf8(bytes).unwrap();
        // The contract: never a panic or hang — always one parseable response
        // with a status, echoing the request id whenever one survived.
        let response = Json::parse(&service.handle_line(&line)).unwrap_or_else(|err| {
            panic!("round {round}: unstructured response to {line:?}: {err}")
        });
        response
            .field("status")
            .and_then(Json::as_str)
            .unwrap_or_else(|err| panic!("round {round}: response without status: {err}"));
        if let Ok(request) = Json::parse(&line) {
            if let Some(id) = request.get("id") {
                assert_eq!(
                    response.get("id"),
                    Some(id),
                    "round {round}: id not echoed for {line:?}"
                );
            }
        }
    }
    // The service survived the whole run.
    parse_ok(&service.handle_line(&request(78, "ping", vec![])));
}

#[test]
fn zero_deadline_requests_time_out_with_structured_status() {
    let service = Service::default();
    // deadline_ms:0 expires before the first simulator epoch: deterministic.
    let response = Json::parse(&service.handle_line(&request(
        1,
        "campaign",
        vec![
            ("cells", campaign_cells_to_json(&campaign_specs())),
            ("deadline_ms", Json::Num(0.0)),
        ],
    )))
    .unwrap();
    assert_eq!(
        response.field("status").unwrap().as_str().unwrap(),
        "timeout"
    );
    assert_eq!(response.field("id").unwrap().as_usize().unwrap(), 1);
    assert_eq!(service.telemetry().snapshot().counter("serve.timeouts"), 1);

    // The timed-out cell was forgotten, not memoised: the identical request
    // without a deadline simulates cleanly and bit-identically.
    let reference = CampaignReport::new(Runner::sequential().execute(&campaign_specs()).unwrap());
    let response = parse_ok(&service.handle_line(&request(
        2,
        "campaign",
        vec![("cells", campaign_cells_to_json(&campaign_specs()))],
    )));
    let report = CampaignReport::from_json(&response.field("result").unwrap().render()).unwrap();
    assert_eq!(report, reference);
}

#[test]
fn requests_past_the_admission_budget_are_shed_not_queued() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Condvar, Mutex};

    let service = Service::new(ServeOptions {
        max_in_flight: 1,
        ..ServeOptions::default()
    });
    let release = (Mutex::new(false), Condvar::new());
    let occupied = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // One ext-hook request blocks inside its handler, holding the whole
        // in-flight budget.
        let blocker = scope.spawn(|| {
            service.handle_line_with(&request(1, "block", vec![]), |_, kind, _| {
                (kind == "block").then(|| {
                    occupied.store(true, Ordering::Release);
                    let (lock, signal) = &release;
                    let mut released = lock.lock().unwrap();
                    while !*released {
                        released = signal.wait(released).unwrap();
                    }
                    Ok(Json::obj([("ok", Json::Bool(true))]))
                })
            })
        });
        while !occupied.load(Ordering::Acquire) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(service.in_flight(), 1);
        // Heavy requests past the budget: shed immediately with retry advice.
        let response = Json::parse(&service.handle_line(&request(
            2,
            "campaign",
            vec![("cells", campaign_cells_to_json(&campaign_specs()))],
        )))
        .unwrap();
        assert_eq!(
            response.field("status").unwrap().as_str().unwrap(),
            "overloaded"
        );
        assert!(response.field("retry_after_ms").unwrap().as_f64().unwrap() > 0.0);
        // Light requests bypass admission entirely, even under full load.
        parse_ok(&service.handle_line(&request(3, "ping", vec![])));
        let (lock, signal) = &release;
        *lock.lock().unwrap() = true;
        signal.notify_all();
        parse_ok(&blocker.join().unwrap());
    });
    assert_eq!(service.telemetry().snapshot().counter("serve.shed"), 1);
    // Budget released: the shed campaign now succeeds, and wait_idle drains.
    parse_ok(&service.handle_line(&request(
        4,
        "campaign",
        vec![("cells", campaign_cells_to_json(&campaign_specs()))],
    )));
    assert!(service.wait_idle(std::time::Duration::from_secs(5)));
    assert_eq!(service.in_flight(), 0);
}

#[test]
fn a_panicking_handler_answers_a_structured_error_and_the_service_survives() {
    let service = Service::default();
    let response = Json::parse(
        &service.handle_line_with(&request(9, "explode", vec![]), |_, kind, _| {
            (kind == "explode").then(|| panic!("boom in handler"))
        }),
    )
    .unwrap();
    assert_eq!(response.field("status").unwrap().as_str().unwrap(), "error");
    assert!(
        response
            .field("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("boom in handler"),
        "panic message is surfaced: {response:?}"
    );
    assert_eq!(response.field("id").unwrap().as_usize().unwrap(), 9);
    assert_eq!(service.telemetry().snapshot().counter("serve.panics"), 1);
    // The daemon survives and the in-flight permit was released on unwind.
    assert_eq!(service.in_flight(), 0);
    parse_ok(&service.handle_line(&request(10, "ping", vec![])));
}

#[test]
fn a_panicking_cell_poisons_only_its_cache_slot() {
    let service = Service::default();
    // Two different cells: one panics, one succeeds. The panic is memoised
    // as a structured error for its own key only.
    for round in 0..2 {
        let response = Json::parse(&service.handle_line_with(
            &request(round, "cell", vec![("which", Json::Str("bad".to_string()))]),
            |service, kind, request| {
                (kind == "cell").then(|| {
                    let which = request.field("which")?.as_str()?.to_string();
                    service.compute_cell(&format!("test-cell-{which}"), move || {
                        if which == "bad" {
                            panic!("cell exploded");
                        }
                        Ok(Json::obj([("value", Json::Str(which))]))
                    })
                })
            },
        ))
        .unwrap();
        assert_eq!(response.field("status").unwrap().as_str().unwrap(), "error");
        assert!(
            response
                .field("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("cell exploded"),
            "round {round}: {response:?}"
        );
    }
    // The panic ran once and was replayed from the poisoned slot the second
    // time; a different cell on the same service is unaffected.
    assert_eq!(service.telemetry().snapshot().counter("serve.panics"), 1);
    let response = parse_ok(&service.handle_line_with(
        &request(2, "cell", vec![("which", Json::Str("good".to_string()))]),
        |service, kind, request| {
            (kind == "cell").then(|| {
                let which = request.field("which")?.as_str()?.to_string();
                service.compute_cell(&format!("test-cell-{which}"), move || {
                    if which == "bad" {
                        panic!("cell exploded");
                    }
                    Ok(Json::obj([("value", Json::Str(which))]))
                })
            })
        },
    ));
    assert_eq!(
        response
            .field("result")
            .unwrap()
            .field("value")
            .unwrap()
            .as_str()
            .unwrap(),
        "good"
    );
}
