//! Property-based tests of the data-level collective algorithms and of the
//! cost model: the Table 1 algorithms must compute mathematically correct
//! results for arbitrary inputs, and the hierarchical All-Reduce must be
//! correct for *any* stage ordering (Observation 1 of the paper).

use proptest::prelude::*;
use themis::collectives::functional::{
    all_to_all, direct, halving_doubling, hierarchical, reference_all_reduce,
    reference_reduce_scatter, ring,
};
use themis::collectives::{algorithm_for, CostModel, PhaseOp};
use themis::{DimensionSpec, NetworkTopology, TopologyKind};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-6 * (1.0 + b.abs())
}

/// Strategy: participant data for `p` nodes with `elements` values each.
fn data_strategy(p: usize, elements: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(-100.0f64..100.0, elements..=elements),
        p..=p,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_all_reduce_matches_the_reference(
        p in 2usize..9,
        seg in 1usize..5,
        seed in any::<u64>(),
    ) {
        let elements = p * seg;
        let data: Vec<Vec<f64>> = (0..p)
            .map(|node| {
                (0..elements)
                    .map(|e| ((seed.wrapping_mul(31).wrapping_add((node * elements + e) as u64)
                        % 1000) as f64) / 7.0 - 70.0)
                    .collect()
            })
            .collect();
        let result = ring::all_reduce(&data).unwrap();
        let expected = reference_all_reduce(&data).unwrap();
        for (row, reference) in result.iter().zip(expected.iter()) {
            for (a, b) in row.iter().zip(reference.iter()) {
                prop_assert!(close(*a, *b));
            }
        }
    }

    #[test]
    fn direct_and_halving_doubling_match_the_reference(
        pow in 1u32..5,
        seg in 1usize..4,
        values in prop::collection::vec(-50.0f64..50.0, 256),
    ) {
        let p = 1usize << pow;
        let elements = p * seg;
        let data: Vec<Vec<f64>> = (0..p)
            .map(|node| (0..elements).map(|e| values[(node * elements + e) % values.len()]).collect())
            .collect();
        let expected = reference_all_reduce(&data).unwrap();
        for result in [direct::all_reduce(&data).unwrap(), halving_doubling::all_reduce(&data).unwrap()] {
            for (row, reference) in result.iter().zip(expected.iter()) {
                for (a, b) in row.iter().zip(reference.iter()) {
                    prop_assert!(close(*a, *b));
                }
            }
        }
        // Reduce-Scatter shards tile the vector and match the reference sums.
        let shards = halving_doubling::reduce_scatter(&data).unwrap();
        let reference_shards = reference_reduce_scatter(&data).unwrap();
        for shard in &shards {
            let matching = reference_shards.iter().find(|r| r.start == shard.start).unwrap();
            for (a, b) in shard.values.iter().zip(matching.values.iter()) {
                prop_assert!(close(*a, *b));
            }
        }
    }

    #[test]
    fn hierarchical_all_reduce_is_order_independent(
        data in data_strategy(8, 16),
        rs_perm in Just(()).prop_flat_map(|_| prop::sample::select(vec![
            vec![0usize, 1, 2], vec![0, 2, 1], vec![1, 0, 2],
            vec![1, 2, 0], vec![2, 0, 1], vec![2, 1, 0],
        ])),
        ag_perm in Just(()).prop_flat_map(|_| prop::sample::select(vec![
            vec![0usize, 1, 2], vec![0, 2, 1], vec![1, 0, 2],
            vec![1, 2, 0], vec![2, 0, 1], vec![2, 1, 0],
        ])),
    ) {
        // A 2x2x2 machine (8 NPUs) and 16 elements per NPU.
        let topo = NetworkTopology::new(
            "proptest-2x2x2",
            vec![
                DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 2, 100.0, 0.0).unwrap(),
                DimensionSpec::with_aggregate_bandwidth(TopologyKind::Ring, 2, 100.0, 0.0).unwrap(),
                DimensionSpec::with_aggregate_bandwidth(TopologyKind::FullyConnected, 2, 100.0, 0.0).unwrap(),
            ],
        )
        .unwrap();
        let expected = reference_all_reduce(&data).unwrap();
        let result = hierarchical::all_reduce(&topo, &data, &rs_perm, &ag_perm).unwrap();
        for (row, reference) in result.iter().zip(expected.iter()) {
            for (a, b) in row.iter().zip(reference.iter()) {
                prop_assert!(close(*a, *b));
            }
        }
    }

    #[test]
    fn all_to_all_is_an_involution_and_preserves_the_multiset(
        p in 2usize..8,
        seed in any::<u32>(),
    ) {
        let elements = p * p;
        let data: Vec<Vec<f64>> = (0..p)
            .map(|node| {
                (0..elements)
                    .map(|e| ((seed as usize + node * 7 + e * 3) % 101) as f64 - 50.0)
                    .collect()
            })
            .collect();
        let once = all_to_all::all_to_all(&data).unwrap();
        // Total multiset of values is preserved.
        let mut before: Vec<i64> = data.iter().flatten().map(|v| (*v * 1000.0) as i64).collect();
        let mut after: Vec<i64> = once.iter().flatten().map(|v| (*v * 1000.0) as i64).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn cost_model_is_monotonic_and_consistent(
        kind in prop_oneof![
            Just(TopologyKind::Ring),
            Just(TopologyKind::FullyConnected),
            Just(TopologyKind::Switch),
        ],
        pow in 1u32..7,
        bandwidth in 50.0f64..3000.0,
        latency in 0.0f64..2000.0,
        bytes in 1.0f64..1e9,
    ) {
        let p = 1usize << pow;
        let dim = DimensionSpec::with_aggregate_bandwidth(kind, p, bandwidth, latency).unwrap();
        let model = CostModel::new();
        let smaller = model.chunk_cost(&dim, PhaseOp::ReduceScatter, bytes).unwrap();
        let larger = model.chunk_cost(&dim, PhaseOp::ReduceScatter, bytes * 2.0).unwrap();
        // Monotonic in chunk size.
        prop_assert!(larger.total_ns() >= smaller.total_ns());
        prop_assert!(larger.wire_bytes >= smaller.wire_bytes);
        // Total = fixed + transfer, and the fixed delay matches steps x latency.
        prop_assert!(close(smaller.total_ns(), smaller.fixed_delay_ns + smaller.transfer_ns));
        let algorithm = algorithm_for(kind);
        prop_assert!(close(
            smaller.fixed_delay_ns,
            algorithm.steps(PhaseOp::ReduceScatter, p) as f64 * latency
        ));
        // Reduce-Scatter then All-Gather restores the resident size.
        let after_rs = smaller.resident_bytes_after;
        let ag = model.chunk_cost(&dim, PhaseOp::AllGather, after_rs).unwrap();
        prop_assert!(close(ag.resident_bytes_after, bytes));
        // The All-Gather leg moves the same bytes as the Reduce-Scatter leg.
        prop_assert!(close(ag.wire_bytes, smaller.wire_bytes));
    }
}
