//! Property-style tests of the data-level collective algorithms and of the
//! cost model: the Table 1 algorithms must compute mathematically correct
//! results for arbitrary inputs, and the hierarchical All-Reduce must be
//! correct for *any* stage ordering (Observation 1 of the paper).
//!
//! Deterministic grids + seeded pseudo-random data stand in for `proptest`
//! (unavailable in the offline build environment); every case that fails
//! prints the parameters needed to reproduce it.

mod common;

use common::{close, Lcg};
use themis::collectives::functional::{
    all_to_all, direct, halving_doubling, hierarchical, reference_all_reduce,
    reference_reduce_scatter, ring,
};
use themis::collectives::{algorithm_for, CostModel, PhaseOp};
use themis::{DimensionSpec, NetworkTopology, TopologyKind};

fn assert_matches_reference(result: &[Vec<f64>], expected: &[Vec<f64>], context: &str) {
    for (row, reference) in result.iter().zip(expected.iter()) {
        for (a, b) in row.iter().zip(reference.iter()) {
            assert!(close(*a, *b), "{context}: {a} != {b}");
        }
    }
}

#[test]
fn ring_all_reduce_matches_the_reference() {
    for p in 2usize..9 {
        for seg in 1usize..5 {
            for seed in [1u64, 7, 42, 1337] {
                let elements = p * seg;
                let data = Lcg::new(seed ^ (p as u64) << 8 ^ (seg as u64) << 16)
                    .participant_data(p, elements, -70.0, 70.0);
                let result = ring::all_reduce(&data).unwrap();
                let expected = reference_all_reduce(&data).unwrap();
                assert_matches_reference(&result, &expected, &format!("ring p={p} seg={seg}"));
            }
        }
    }
}

#[test]
fn direct_and_halving_doubling_match_the_reference() {
    for pow in 1u32..5 {
        for seg in 1usize..4 {
            let p = 1usize << pow;
            let elements = p * seg;
            let data = Lcg::new(900 + pow as u64 * 10 + seg as u64)
                .participant_data(p, elements, -50.0, 50.0);
            let expected = reference_all_reduce(&data).unwrap();
            for (name, result) in [
                ("direct", direct::all_reduce(&data).unwrap()),
                (
                    "halving-doubling",
                    halving_doubling::all_reduce(&data).unwrap(),
                ),
            ] {
                assert_matches_reference(&result, &expected, &format!("{name} p={p} seg={seg}"));
            }
            // Reduce-Scatter shards tile the vector and match the reference sums.
            let shards = halving_doubling::reduce_scatter(&data).unwrap();
            let reference_shards = reference_reduce_scatter(&data).unwrap();
            for shard in &shards {
                let matching = reference_shards
                    .iter()
                    .find(|r| r.start == shard.start)
                    .unwrap();
                for (a, b) in shard.values.iter().zip(matching.values.iter()) {
                    assert!(close(*a, *b), "rs shard p={p} seg={seg}");
                }
            }
        }
    }
}

#[test]
fn hierarchical_all_reduce_is_order_independent() {
    // A 2x2x2 machine (8 NPUs) and 16 elements per NPU: every Reduce-Scatter
    // permutation combined with every All-Gather permutation must produce the
    // same (reference) result — Observation 1.
    let topo = NetworkTopology::new(
        "grid-2x2x2",
        vec![
            DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 2, 100.0, 0.0).unwrap(),
            DimensionSpec::with_aggregate_bandwidth(TopologyKind::Ring, 2, 100.0, 0.0).unwrap(),
            DimensionSpec::with_aggregate_bandwidth(TopologyKind::FullyConnected, 2, 100.0, 0.0)
                .unwrap(),
        ],
    )
    .unwrap();
    let permutations: [Vec<usize>; 6] = [
        vec![0, 1, 2],
        vec![0, 2, 1],
        vec![1, 0, 2],
        vec![1, 2, 0],
        vec![2, 0, 1],
        vec![2, 1, 0],
    ];
    for seed in [3u64, 99] {
        let data = Lcg::new(seed).participant_data(8, 16, -100.0, 100.0);
        let expected = reference_all_reduce(&data).unwrap();
        for rs_perm in &permutations {
            for ag_perm in &permutations {
                let result = hierarchical::all_reduce(&topo, &data, rs_perm, ag_perm).unwrap();
                assert_matches_reference(
                    &result,
                    &expected,
                    &format!("hierarchical rs={rs_perm:?} ag={ag_perm:?}"),
                );
            }
        }
    }
}

#[test]
fn all_to_all_preserves_the_value_multiset() {
    for p in 2usize..8 {
        for seed in [5u64, 77, 4242] {
            let elements = p * p;
            let data: Vec<Vec<f64>> = (0..p)
                .map(|node| {
                    (0..elements)
                        .map(|e| ((seed as usize + node * 7 + e * 3) % 101) as f64 - 50.0)
                        .collect()
                })
                .collect();
            let once = all_to_all::all_to_all(&data).unwrap();
            // Total multiset of values is preserved.
            let mut before: Vec<i64> = data
                .iter()
                .flatten()
                .map(|v| (*v * 1000.0) as i64)
                .collect();
            let mut after: Vec<i64> = once
                .iter()
                .flatten()
                .map(|v| (*v * 1000.0) as i64)
                .collect();
            before.sort_unstable();
            after.sort_unstable();
            assert_eq!(before, after, "p={p} seed={seed}");
        }
    }
}

#[test]
fn cost_model_is_monotonic_and_consistent() {
    let kinds = [
        TopologyKind::Ring,
        TopologyKind::FullyConnected,
        TopologyKind::Switch,
    ];
    let mut rng = Lcg::new(2024);
    for kind in kinds {
        for pow in 1u32..7 {
            for _ in 0..8 {
                let p = 1usize << pow;
                let bandwidth = rng.uniform(50.0, 3000.0);
                let latency = rng.uniform(0.0, 2000.0);
                let bytes = rng.uniform(1.0, 1e9);
                let context = format!("{kind:?} p={p} bw={bandwidth} lat={latency} bytes={bytes}");
                let dim =
                    DimensionSpec::with_aggregate_bandwidth(kind, p, bandwidth, latency).unwrap();
                let model = CostModel::new();
                let smaller = model
                    .chunk_cost(&dim, PhaseOp::ReduceScatter, bytes)
                    .unwrap();
                let larger = model
                    .chunk_cost(&dim, PhaseOp::ReduceScatter, bytes * 2.0)
                    .unwrap();
                // Monotonic in chunk size.
                assert!(larger.total_ns() >= smaller.total_ns(), "{context}");
                assert!(larger.wire_bytes >= smaller.wire_bytes, "{context}");
                // Total = fixed + transfer; the fixed delay matches steps x latency.
                assert!(
                    close(
                        smaller.total_ns(),
                        smaller.fixed_delay_ns + smaller.transfer_ns
                    ),
                    "{context}"
                );
                let algorithm = algorithm_for(kind);
                assert!(
                    close(
                        smaller.fixed_delay_ns,
                        algorithm.steps(PhaseOp::ReduceScatter, p) as f64 * latency
                    ),
                    "{context}"
                );
                // Reduce-Scatter then All-Gather restores the resident size.
                let after_rs = smaller.resident_bytes_after;
                let ag = model
                    .chunk_cost(&dim, PhaseOp::AllGather, after_rs)
                    .unwrap();
                assert!(close(ag.resident_bytes_after, bytes), "{context}");
                // The All-Gather leg moves the same bytes as the Reduce-Scatter leg.
                assert!(close(ag.wire_bytes, smaller.wire_bytes), "{context}");
            }
        }
    }
}
