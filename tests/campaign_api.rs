//! Integration tests of the `themis::api` experiment layer: campaign matrix
//! expansion, sequential/parallel runner determinism, the unified error type,
//! and JSON round-tripping of campaign reports.

use themis::prelude::*;

fn small_campaign() -> Campaign {
    Campaign::new()
        .topologies([PresetTopology::Sw2d, PresetTopology::SwSwSw3dHetero])
        .sizes_mib([64.0, 128.0])
        .chunk_counts([16])
}

#[test]
fn campaign_expansion_counts_match_the_declared_axes() {
    let campaign = Campaign::new()
        .topologies(PresetTopology::next_generation())
        .sizes_mib([100.0, 250.0, 500.0, 750.0, 1024.0])
        .chunk_counts([32, 64]);
    assert_eq!(campaign.matrix_size(), 6 * 5 * 2 * 3);
    let specs = campaign.expand().unwrap();
    assert_eq!(specs.len(), 180);
    // Matrix order: platform -> size -> chunks -> scheduler; the scheduler
    // axis cycles fastest.
    assert_eq!(specs[0].job.scheduler_kind(), SchedulerKind::Baseline);
    assert_eq!(specs[1].job.scheduler_kind(), SchedulerKind::ThemisFifo);
    assert_eq!(specs[2].job.scheduler_kind(), SchedulerKind::ThemisScf);
    assert_eq!(specs[0].job.chunk_count(), 32);
    assert_eq!(specs[3].job.chunk_count(), 64);
    // Each platform block covers sizes x chunks x schedulers cells.
    assert_eq!(specs[0].platform.name(), "2D-SW_SW");
    assert_eq!(specs[5 * 2 * 3].platform.name(), "3D-SW_SW_SW_homo");
}

#[test]
fn parallel_and_sequential_runners_produce_identical_reports() {
    let campaign = small_campaign();
    let sequential = campaign.run(&Runner::sequential()).unwrap();
    let parallel = campaign.run(&Runner::parallel_threads(4)).unwrap();
    assert_eq!(sequential.len(), 2 * 2 * 3); // platforms x sizes x schedulers
                                             // Bit-identical, including matrix order and every float in every report.
    assert_eq!(sequential, parallel);
    for (seq, par) in sequential.iter().zip(parallel.iter()) {
        assert_eq!(seq.total_time_ns().to_bits(), par.total_time_ns().to_bits());
    }
}

#[test]
fn parallel_and_sequential_runners_agree_on_stream_cells() {
    // Stream campaigns go through the same worker-pool backend and must be
    // bit-identical across backends too.
    let stream = StreamJob::named("mp-then-dp")
        .push(QueuedCollective::all_reduce_mib("MP layer", 32.0))
        .push(QueuedCollective::all_reduce_mib("DP grads", 128.0).issued_at(25_000.0))
        .chunks(16);
    let campaign = StreamCampaign::new()
        .topologies([PresetTopology::Sw2d, PresetTopology::SwSwSw3dHetero])
        .stream(stream);
    let sequential = campaign.run(&Runner::sequential()).unwrap();
    let parallel = campaign.run(&Runner::parallel_threads(4)).unwrap();
    assert_eq!(sequential.len(), 6); // 2 platforms x 1 stream x 3 schedulers
    assert_eq!(sequential, parallel);
    for (seq, par) in sequential.iter().zip(parallel.iter()) {
        assert_eq!(seq.makespan_ns().to_bits(), par.makespan_ns().to_bits());
        assert_eq!(
            seq.report.overlap_ns.to_bits(),
            par.report.overlap_ns.to_bits()
        );
    }
}

#[test]
fn cached_and_uncached_campaigns_are_bit_identical_across_all_presets() {
    // The schedule-cache contract: schedulers are deterministic, so serving a
    // cell from the shared cache must not move a single bit of the report.
    // Cover every Table 3 scheduler on every preset topology.
    let campaign = Campaign::new()
        .topologies(PresetTopology::all())
        .sizes_mib([96.0])
        .chunk_counts([16]);
    assert_eq!(campaign.matrix_size(), 7 * 3);
    let cached = campaign.run(&Runner::parallel_threads(4)).unwrap();
    let uncached = campaign
        .run(&Runner::parallel_threads(4).with_schedule_cache(false))
        .unwrap();
    assert_eq!(cached, uncached);
    for (with_cache, without_cache) in cached.iter().zip(uncached.iter()) {
        assert_eq!(
            with_cache.total_time_ns().to_bits(),
            without_cache.total_time_ns().to_bits(),
            "{}",
            with_cache.config
        );
        assert_eq!(with_cache.report.op_log, without_cache.report.op_log);
    }
    // The sequential backend agrees too (cache shared by one worker only).
    let sequential_cached = campaign.run(&Runner::sequential()).unwrap();
    assert_eq!(sequential_cached, cached);
}

#[test]
fn warm_plan_campaigns_are_bit_identical_across_all_presets_and_backends() {
    // The precompiled-plan contract: serving schedules *and* per-op cost
    // tables from one warm `SimPlanCache` — across repeated runs, both
    // runner backends and every Table 3 scheduler on every preset topology —
    // must not move a single bit of any report.
    let campaign = Campaign::new()
        .topologies(PresetTopology::all())
        .sizes_mib([96.0])
        .chunk_counts([16]);
    let reference = campaign
        .run(&Runner::parallel_threads(4).with_schedule_cache(false))
        .unwrap();
    let plan = SimPlanCache::new();
    for runner in [Runner::sequential(), Runner::parallel_threads(4)] {
        for _ in 0..2 {
            let warm = campaign.run_with_cache(&runner, &plan).unwrap();
            assert_eq!(warm, reference);
        }
    }
    assert!(plan.schedules().hits() > 0);
    assert!(plan.cost_tables().hits() > 0);
    // Themis+FIFO and Themis+SCF share one cost table per (topology, size),
    // so the plan holds fewer tables than schedules.
    assert!(plan.cost_tables().len() < plan.schedules().len());

    // The per-cell planned path agrees with the one-shot path too.
    let mut workspace = SimWorkspace::new();
    for spec in campaign.expand().unwrap() {
        let planned = spec
            .job
            .run_planned(&spec.platform, &plan, &mut workspace)
            .unwrap();
        assert_eq!(planned, spec.job.run_on(&spec.platform).unwrap());
    }
}

#[test]
fn disabling_the_op_log_only_drops_the_trace() {
    let campaign = small_campaign();
    let with_log = campaign.run(&Runner::sequential()).unwrap();
    let without_log = campaign
        .clone()
        .sim_options(SimOptions::default().with_op_log(false))
        .run(&Runner::sequential())
        .unwrap();
    for (logged, quiet) in with_log.iter().zip(without_log.iter()) {
        assert!(!logged.report.op_log.is_empty());
        assert!(quiet.report.op_log.is_empty());
        assert_eq!(
            logged.total_time_ns().to_bits(),
            quiet.total_time_ns().to_bits()
        );
        assert_eq!(logged.report.dims, quiet.report.dims);
    }
}

#[test]
fn campaign_cells_match_single_job_runs() {
    let report = small_campaign().run(&Runner::parallel()).unwrap();
    let platform = Platform::preset(PresetTopology::Sw2d);
    let single = Job::all_reduce_mib(64.0)
        .chunks(16)
        .scheduler(SchedulerKind::ThemisScf)
        .run_on(&platform)
        .unwrap();
    let cell = report
        .find_with_chunks(
            "2D-SW_SW",
            SchedulerKind::ThemisScf,
            DataSize::from_mib(64.0),
            16,
        )
        .unwrap();
    assert_eq!(cell, &single);
}

#[test]
fn campaign_report_round_trips_through_json() {
    let report = small_campaign().run(&Runner::parallel()).unwrap();
    let text = report.to_json();
    assert!(text.starts_with('{'));
    let restored = CampaignReport::from_json(&text).unwrap();
    assert_eq!(restored, report);
    // And the restored report supports the same queries.
    let speedup = restored
        .speedup_over_baseline(
            "2D-SW_SW",
            DataSize::from_mib(128.0),
            SchedulerKind::ThemisScf,
        )
        .unwrap();
    assert!(speedup >= 1.0);
}

#[test]
fn themis_error_wraps_every_layer_of_the_stack() {
    // themis-net: unknown preset name.
    let err = Platform::named("9D-everything").unwrap_err();
    assert!(matches!(err, ThemisError::Net(_)), "{err}");

    // themis-core: zero chunks is a scheduling error.
    let platform = Platform::preset(PresetTopology::Sw2d);
    let err = Job::all_reduce_mib(16.0)
        .chunks(0)
        .run_on(&platform)
        .unwrap_err();
    assert!(matches!(err, ThemisError::Schedule(_)), "{err}");

    // themis-sim: invalid simulator options surface from the campaign layer.
    let err = Campaign::new()
        .topologies([PresetTopology::Sw2d])
        .sizes_mib([16.0])
        .sim_options(SimOptions::default().with_max_concurrent_ops(0))
        .run(&Runner::sequential())
        .unwrap_err();
    assert!(matches!(err, ThemisError::Sim(_)), "{err}");

    // themis-workloads: Transformer-1T's 128-NPU model-parallel group cannot
    // be carved out of a 4-NPU platform.
    let tiny = Platform::custom(
        NetworkTopology::builder("tiny-2x2")
            .dimension(
                DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 2, 100.0, 0.0)
                    .unwrap(),
            )
            .dimension(
                DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 2, 100.0, 0.0)
                    .unwrap(),
            )
            .build()
            .unwrap(),
    );
    let err = TrainingJob::new(Workload::Transformer1T)
        .run_on(&tiny)
        .unwrap_err();
    assert!(matches!(err, ThemisError::Workload(_)), "{err}");

    // themis-collectives: errors convert through the shared From impl.
    let collective_err =
        themis::collectives::CollectiveError::TooFewParticipants { participants: 1 };
    let err = ThemisError::from(collective_err);
    assert!(matches!(err, ThemisError::Collective(_)), "{err}");

    // Campaign-level validation has its own variant.
    let err = Campaign::new().run(&Runner::sequential()).unwrap_err();
    assert!(matches!(err, ThemisError::Campaign { .. }), "{err}");

    // And malformed JSON reports too.
    let err = CampaignReport::from_json("[not json").unwrap_err();
    assert!(matches!(err, ThemisError::Json { .. }), "{err}");
}

#[test]
fn errors_propagate_through_both_runner_backends() {
    let campaign = Campaign::new()
        .topologies([PresetTopology::Sw2d])
        .sizes_mib([16.0])
        .chunk_counts([0]);
    for runner in [Runner::sequential(), Runner::parallel()] {
        let err = campaign.run(&runner).unwrap_err();
        assert!(matches!(err, ThemisError::Campaign { .. }), "{err}");
    }
}

#[test]
fn custom_platforms_and_options_flow_through_the_campaign() {
    let topo = NetworkTopology::builder("custom-4x4")
        .dimension(
            DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 4, 800.0, 0.0).unwrap(),
        )
        .dimension(
            DimensionSpec::with_aggregate_bandwidth(TopologyKind::Switch, 4, 400.0, 0.0).unwrap(),
        )
        .build()
        .unwrap();
    let report = Campaign::new()
        .platform(Platform::custom(topo).with_enforced_order(true))
        .schedulers([SchedulerKind::ThemisScf])
        .sizes_mib([32.0])
        .chunk_counts([8])
        .run(&Runner::sequential())
        .unwrap();
    assert_eq!(report.len(), 1);
    let run = &report.results()[0];
    assert_eq!(run.config.topology, "custom-4x4");
    assert_eq!(run.config.chunks, 8);
    assert!(run.total_time_ns() > 0.0);
}
