//! Smoke tests of the experiment harness (`themis-bench`): every figure/table
//! runner produces well-formed output with the paper's qualitative shape, on
//! reduced parameterisations so the suite stays fast.

use themis::DataSize;
use themis::Workload;
use themis_bench::experiments;

#[test]
fn table2_report_lists_every_platform() {
    let report = experiments::table2::run();
    let text = report.to_string();
    for name in [
        "Current-2D",
        "2D-SW_SW",
        "3D-SW_SW_SW_homo",
        "3D-SW_SW_SW_hetero",
        "3D-FC_Ring_SW",
        "4D-Ring_SW_SW_SW",
        "4D-Ring_FC_Ring_SW",
    ] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn fig04_curves_show_the_motivation_gap() {
    let curves = experiments::fig04::curves_for(Workload::Gnmt);
    assert_eq!(curves.len(), 7);
    // The current platform's baseline dot sits near full utilisation; at least
    // one next-gen platform drops below 65 % (the problem Themis solves).
    assert!(curves[0].baseline_utilization > 0.9);
    assert!(curves[1..].iter().any(|c| c.baseline_utilization < 0.65));
}

#[test]
fn fig05_report_reproduces_the_running_example() {
    let report = experiments::fig05::run();
    let text = report.to_string();
    assert!(text.contains("Baseline"));
    assert!(text.contains("Themis"));
    assert!(text.contains("chunk 2"));
}

#[test]
fn fig08_and_fig11_sweeps_have_the_right_shape() {
    let sizes = [DataSize::from_mib(512.0)];
    let fig08 = experiments::fig08::run_with(&sizes);
    assert_eq!(fig08.len(), 6);
    for point in &fig08 {
        assert!(
            point.scf_speedup() >= 1.0,
            "{}: {:?}",
            point.topology,
            point.time_us
        );
    }
    let fig11 = experiments::fig11::run_with(&sizes);
    let means = experiments::fig11::mean_utilization(&fig11);
    assert!(means[0] < means[2]);
    assert!(means[2] > 0.85);
}

#[test]
fn fig09_timelines_cover_all_dimensions() {
    let timelines = experiments::fig09::run_with(DataSize::from_mib(128.0));
    assert_eq!(timelines.len(), 3);
    for timeline in &timelines {
        assert_eq!(timeline.rates.len(), 3);
        assert!(timeline.total_time_ns > 0.0);
    }
}

#[test]
fn fig10_chunk_sensitivity_reports_both_topologies() {
    let points = experiments::fig10::run_with(&[8, 32]);
    assert_eq!(points.len(), 4);
    for point in &points {
        for util in point.utilization {
            assert!((0.0..=1.0).contains(&util));
        }
    }
}

#[test]
fn fig12_and_summary_reproduce_the_headline_shape() {
    let cells = experiments::fig12::run_with(&[Workload::Gnmt]);
    let (avg, max) = experiments::fig12::speedup_over_baseline(
        &cells,
        Workload::Gnmt,
        themis::CommunicationPolicy::ThemisScf,
    );
    assert!(avg > 1.05);
    assert!(max >= avg);

    let headline =
        experiments::summary::compute_with(&[DataSize::from_mib(512.0)], &[Workload::Gnmt]);
    assert!(headline.allreduce_speedup_mean > 1.2);
    assert!(headline.mean_utilization[2] > headline.mean_utilization[0]);
}

#[test]
fn sec63_scenarios_classify_and_simulate() {
    let scenarios = experiments::sec63::run_sweep(&[100.0, 200.0]);
    assert_eq!(scenarios.len(), 2);
    assert!(scenarios[0].baseline_utilization > 0.8);
    assert!(scenarios[1].themis_utilization > scenarios[1].baseline_utilization);
}
